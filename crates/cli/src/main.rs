//! `helix` — the scenario runner.
//!
//! Every subcommand operates on declarative scenario files
//! (`scenarios/*.toml`); see `docs/SCENARIOS.md` for the full spec
//! schema (including multi-nest scenarios) and the README's "Adding a
//! scenario" section for a quick tour.
//!
//! ```text
//! helix run scenarios/175.vpr.toml          # compile + simulate, print summary
//! helix run scenarios/ --out-dir reports/   # run all, write per-scenario JSON
//! helix check scenarios/                    # parse + validate + generate
//! helix list scenarios/                     # one line per scenario
//! helix smoke scenarios/ --cores 8          # CI gate: every spec must run clean
//! helix campaign campaigns/smoke.toml       # cross-scenario sweep from one config
//! helix export scenarios/                   # (re)write the built-in specs
//! ```

use helix_rc::campaign::{load_campaign, run_campaign_with, CampaignRunOptions};
use helix_rc::resilient::FaultPlan;
use helix_rc::scenario::{run_scenario, RunOverrides, ScenarioReport};
use helix_rc::workloads::{builtin_specs, generate, Scale, ScenarioSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
helix — declarative scenario runner for the HELIX-RC reproduction

USAGE:
    helix run      <spec.toml|dir>... [--cores N] [--fuel N] [--full]
                   [--out FILE | --out-dir DIR] [--quiet]
    helix check    <spec.toml|dir>...
    helix list     <dir>...
    helix smoke    <dir>... [--cores N] [--fuel N] [--full] [--out-dir DIR]
    helix campaign <campaign.toml> [--full] [--out FILE] [--quiet]
                   [--journal DIR] [--resume]
                   [--retries N] [--cycle-budget N] [--wall-budget-ms N]
                   [--chaos-seed N] [--chaos-panics N] [--chaos-stalls N]
                   [--chaos-blowouts N] [--chaos-stall-ms N] [--chaos-transient]
    helix diff     <a.json> <b.json>
    helix export   <dir>
    helix help

COMMANDS:
    run      Compile + simulate each scenario on its configured machines
             and print a summary; JSON reports go to --out / --out-dir.
    check    Parse, validate, and generate each scenario without
             simulating (fast schema check).
    list     Show name, kind, size, and description of each scenario.
    smoke    Run every scenario end-to-end, report each failure, and
             exit non-zero if any failed — the CI gate that keeps
             committed specs runnable.
    campaign Run a cross-scenario sweep campaign: one TOML config names
             scenario specs (globs) plus a machine/compiler grid, cells
             run in parallel behind the resilient layer (panic isolation,
             budgets, retries), and the aggregated paper-style tables are
             printed (JSON report via --out). Failed cells are enumerated
             in the report and exit code 3 flags them. See
             docs/CAMPAIGNS.md.
    diff     Compare two campaign report JSON files byte-for-byte; print
             the differing region if any. 'diff == empty' is the
             cache-hit / determinism check.
    export   Write the built-in scenario specs (SPEC stand-ins + novel
             workloads) into a directory as TOML.

OPTIONS:
    --cores N          Override the spec's core count (run/smoke)
    --fuel N           Override the spec's simulation cycle budget (run/smoke)
    --full             Use the Full problem scale (default: Test)
    --out FILE         Write the JSON report here
    --out-dir DIR      Write one <name>.report.json per scenario
    --quiet            One line per scenario instead of full tables
    --journal DIR      Journal completed campaign cells into DIR
                       (content-addressed; default <campaign>.journal
                       when --resume is given without --journal)
    --resume           Skip cells already present in the journal
    --retries N        Override [resilience] max_retries
    --cycle-budget N   Override [resilience] cycle_budget (simulated cycles)
    --wall-budget-ms N Override [resilience] wall_budget_ms
    --chaos-seed N     Enable the chaos harness with this seed
    --chaos-panics N   Cells that panic under chaos (default 0)
    --chaos-stalls N   Cells that stall under chaos (default 0)
    --chaos-blowouts N Cells that run with a tiny cycle budget (default 0)
    --chaos-stall-ms N Stall duration in milliseconds (default 50)
    --chaos-transient  Inject each fault only on a cell's first attempt

EXIT CODES:
    0  success        2  usage error       1  hard failure
    3  campaign completed with failed cells (see the failures section)
";

/// Exit code for a campaign that completed but has failed cells: the
/// report is usable, distinct from both success and a hard failure.
const EXIT_CELL_FAILURES: u8 = 3;

fn fail(message: impl AsRef<str>) -> ExitCode {
    eprintln!("helix: {}", message.as_ref());
    ExitCode::FAILURE
}

/// Expand files/directories into a sorted list of `.toml` spec paths.
fn collect_spec_files(inputs: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for input in inputs {
        let path = Path::new(input);
        if path.is_dir() {
            let mut in_dir: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory '{input}': {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
                .collect();
            in_dir.sort();
            if in_dir.is_empty() {
                return Err(format!("no .toml scenarios in '{input}'"));
            }
            files.extend(in_dir);
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("no such file or directory: '{input}'"));
        }
    }
    if files.is_empty() {
        return Err("no scenario files given".into());
    }
    Ok(files)
}

fn load_spec(path: &Path) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
    ScenarioSpec::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[derive(Debug, Default)]
struct Options {
    inputs: Vec<String>,
    cores: Option<usize>,
    fuel: Option<u64>,
    full: bool,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    quiet: bool,
    journal: Option<PathBuf>,
    resume: bool,
    retries: Option<i64>,
    cycle_budget: Option<i64>,
    wall_budget_ms: Option<i64>,
    chaos_seed: Option<u64>,
    chaos_panics: usize,
    chaos_stalls: usize,
    chaos_blowouts: usize,
    chaos_stall_ms: u64,
    chaos_transient: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        chaos_stall_ms: 50,
        ..Options::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--cores" => {
                let cores: usize = value_of("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?;
                if cores == 0 {
                    return Err("--cores must be >= 1".into());
                }
                opts.cores = Some(cores);
            }
            "--fuel" => {
                let fuel: u64 = value_of("--fuel")?
                    .parse()
                    .map_err(|e| format!("--fuel: {e}"))?;
                if fuel == 0 {
                    return Err("--fuel must be >= 1".into());
                }
                opts.fuel = Some(fuel);
            }
            "--full" => opts.full = true,
            "--out" => opts.out = Some(PathBuf::from(value_of("--out")?)),
            "--out-dir" => opts.out_dir = Some(PathBuf::from(value_of("--out-dir")?)),
            "--quiet" => opts.quiet = true,
            "--journal" => opts.journal = Some(PathBuf::from(value_of("--journal")?)),
            "--resume" => opts.resume = true,
            "--retries" => {
                opts.retries = Some(
                    value_of("--retries")?
                        .parse()
                        .map_err(|e| format!("--retries: {e}"))?,
                );
            }
            "--cycle-budget" => {
                opts.cycle_budget = Some(
                    value_of("--cycle-budget")?
                        .parse()
                        .map_err(|e| format!("--cycle-budget: {e}"))?,
                );
            }
            "--wall-budget-ms" => {
                opts.wall_budget_ms = Some(
                    value_of("--wall-budget-ms")?
                        .parse()
                        .map_err(|e| format!("--wall-budget-ms: {e}"))?,
                );
            }
            "--chaos-seed" => {
                opts.chaos_seed = Some(
                    value_of("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                );
            }
            "--chaos-panics" => {
                opts.chaos_panics = value_of("--chaos-panics")?
                    .parse()
                    .map_err(|e| format!("--chaos-panics: {e}"))?;
            }
            "--chaos-stalls" => {
                opts.chaos_stalls = value_of("--chaos-stalls")?
                    .parse()
                    .map_err(|e| format!("--chaos-stalls: {e}"))?;
            }
            "--chaos-blowouts" => {
                opts.chaos_blowouts = value_of("--chaos-blowouts")?
                    .parse()
                    .map_err(|e| format!("--chaos-blowouts: {e}"))?;
            }
            "--chaos-stall-ms" => {
                opts.chaos_stall_ms = value_of("--chaos-stall-ms")?
                    .parse()
                    .map_err(|e| format!("--chaos-stall-ms: {e}"))?;
            }
            "--chaos-transient" => opts.chaos_transient = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            other => opts.inputs.push(other.to_string()),
        }
    }
    Ok(opts)
}

impl Options {
    fn scale(&self) -> Scale {
        if self.full {
            Scale::Full
        } else {
            Scale::Test
        }
    }

    fn overrides(&self) -> RunOverrides {
        RunOverrides {
            cores: self.cores,
            fuel: self.fuel,
        }
    }
}

fn print_report(report: &ScenarioReport, quiet: bool) {
    if quiet {
        let helix = report.runs.iter().rev().find_map(|r| {
            r.speedup_vs_sequential
                .filter(|_| !r.config.starts_with("seq"))
        });
        println!(
            "{:<12} {} cores={} coverage={:.0}% plans={}{}",
            report.scenario,
            report.compiler,
            report.cores,
            100.0 * report.coverage,
            report.plans,
            helix
                .map(|s| format!(" speedup={s:.2}x"))
                .unwrap_or_default()
        );
        return;
    }
    println!(
        "\n{} [{}] — {} @ {} cores, coverage {:.1}%, {} parallel loop(s)",
        report.scenario,
        report.kind,
        report.compiler,
        report.cores,
        100.0 * report.coverage,
        report.plans
    );
    for row in report.runs.iter().chain(&report.sweep) {
        let speedup = row
            .speedup_vs_sequential
            .map(|s| format!("{s:6.2}x"))
            .unwrap_or_else(|| "      -".into());
        println!(
            "  {:<18} {:>12} cycles  {speedup}  {:>10.0} cyc/s  ({:.3}s)",
            row.config,
            row.cycles,
            row.cycles_per_sec(),
            row.wall_secs
        );
    }
    if !report.nests.is_empty() {
        println!("  per-nest breakdown:");
        for nest in &report.nests {
            println!(
                "    {:<14} weight {:>5.1}%  glue {:>5.1}%  coverage {:>5.1}%  {} plan(s)  {:>6.2}x",
                nest.name,
                100.0 * nest.weight,
                100.0 * nest.glue_weight,
                100.0 * nest.coverage,
                nest.plans,
                nest.speedup
            );
        }
    }
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let files = collect_spec_files(&opts.inputs)?;
    if opts.out.is_some() && files.len() != 1 {
        return Err("--out requires exactly one scenario (use --out-dir for many)".into());
    }
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create '{}': {e}", dir.display()))?;
    }
    for file in &files {
        let spec = load_spec(file)?;
        let report = run_scenario(&spec, opts.scale(), opts.overrides())
            .map_err(|e| format!("{}: {e}", spec.name))?;
        print_report(&report, opts.quiet);
        let out_path = opts.out.clone().or_else(|| {
            opts.out_dir
                .as_ref()
                .map(|dir| dir.join(format!("{}.report.json", report.scenario)))
        });
        if let Some(path) = out_path {
            std::fs::write(&path, report.to_json())
                .map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
            if !opts.quiet {
                println!("  report -> {}", path.display());
            }
        }
    }
    Ok(())
}

fn cmd_check(opts: &Options) -> Result<(), String> {
    let files = collect_spec_files(&opts.inputs)?;
    for file in &files {
        let spec = load_spec(file)?;
        let program = generate(&spec, opts.scale()).map_err(|e| format!("{}: {e}", spec.name))?;
        program
            .validate()
            .map_err(|e| format!("{}: generated program invalid: {e:?}", spec.name))?;
        println!(
            "ok {:<12} ({} regions, {} phases, {} static insts)",
            spec.name,
            spec.regions.len(),
            spec.phases.len(),
            program.graph.inst_count()
        );
    }
    println!("{} scenario(s) valid", files.len());
    Ok(())
}

fn cmd_list(opts: &Options) -> Result<(), String> {
    let files = collect_spec_files(&opts.inputs)?;
    for file in &files {
        let spec = load_spec(file)?;
        println!(
            "{:<12} {:<4} n={:<5} {}",
            spec.name,
            spec.kind.render(),
            spec.base_n,
            spec.description
        );
    }
    Ok(())
}

fn cmd_smoke(opts: &Options) -> Result<(), String> {
    let files = collect_spec_files(&opts.inputs)?;
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create '{}': {e}", dir.display()))?;
    }
    let mut failures = 0usize;
    for file in &files {
        let result = load_spec(file).and_then(|spec| {
            run_scenario(&spec, opts.scale(), opts.overrides())
                .map_err(|e| format!("{}: {e}", spec.name))
        });
        match result {
            Ok(report) => {
                print_report(&report, true);
                // Optionally collect the JSON reports in the same pass,
                // so CI doesn't have to simulate the suite twice.
                if let Some(dir) = &opts.out_dir {
                    let path = dir.join(format!("{}.report.json", report.scenario));
                    std::fs::write(&path, report.to_json())
                        .map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
                }
            }
            Err(e) => {
                eprintln!("FAIL {}: {e}", file.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} scenario(s) failed", files.len()));
    }
    println!("smoke ok: {} scenario(s)", files.len());
    Ok(())
}

fn cmd_campaign(opts: &Options) -> Result<ExitCode, String> {
    // The grid comes from the campaign file; silently ignoring per-run
    // overrides would run a different sweep than the user asked for.
    if opts.cores.is_some() || opts.fuel.is_some() {
        return Err("campaign does not take --cores/--fuel: edit the campaign's [grid]".into());
    }
    if opts.out_dir.is_some() {
        return Err("campaign writes one aggregated report: use --out FILE".into());
    }
    let [input] = opts.inputs.as_slice() else {
        return Err("campaign takes exactly one campaign file".into());
    };
    let path = Path::new(input);
    let (mut campaign, scenarios) = load_campaign(path).map_err(|e| e.to_string())?;
    if opts.full {
        campaign.scale = Scale::Full;
    }
    if let Some(retries) = opts.retries {
        campaign.resilience.max_retries = retries;
    }
    if let Some(budget) = opts.cycle_budget {
        campaign.resilience.cycle_budget = budget;
    }
    if let Some(ms) = opts.wall_budget_ms {
        campaign.resilience.wall_budget_ms = ms;
    }
    campaign
        .validate()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let journal = opts.journal.clone().or_else(|| {
        // --resume without --journal uses the campaign's sibling dir,
        // so "interrupt, re-run with --resume" needs no bookkeeping.
        opts.resume
            .then(|| PathBuf::from(format!("{}.journal", path.display())))
    });
    let faults = opts.chaos_seed.map(|seed| FaultPlan {
        seed,
        panics: opts.chaos_panics,
        stalls: opts.chaos_stalls,
        blowouts: opts.chaos_blowouts,
        stall_ms: opts.chaos_stall_ms,
        transient: opts.chaos_transient,
    });
    let run_options = CampaignRunOptions {
        journal,
        resume: opts.resume,
        faults,
    };
    let t0 = std::time::Instant::now();
    let report =
        run_campaign_with(&campaign, &scenarios, &run_options).map_err(|e| e.to_string())?;
    let wall = t0.elapsed().as_secs_f64();
    if opts.quiet {
        for (scenario, speedup) in report.helix_speedups() {
            println!("{scenario:<12} helix-rc speedup {speedup:.2}x");
        }
        for failure in &report.failures {
            println!("FAILED {failure}");
        }
    } else {
        println!("{}", report.table());
    }
    eprintln!(
        "campaign '{}': {} scenario(s), {} row(s){} in {wall:.1}s",
        report.name,
        report.scenarios.len(),
        report.rows.len(),
        if report.failures.is_empty() {
            String::new()
        } else {
            format!(", {} FAILED cell(s)", report.failures.len())
        }
    );
    if let Some(out) = &opts.out {
        std::fs::write(out, report.to_json())
            .map_err(|e| format!("cannot write '{}': {e}", out.display()))?;
        eprintln!("report -> {}", out.display());
    }
    Ok(if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_CELL_FAILURES)
    })
}

/// Byte-compare two report files; on mismatch print the differing
/// region (common prefix/suffix lines trimmed, long middles capped).
fn cmd_diff(opts: &Options) -> Result<ExitCode, String> {
    let [a, b] = opts.inputs.as_slice() else {
        return Err("diff takes exactly two report files".into());
    };
    let read = |p: &String| {
        std::fs::read_to_string(Path::new(p)).map_err(|e| format!("cannot read '{p}': {e}"))
    };
    let (ta, tb) = (read(a)?, read(b)?);
    if ta == tb {
        println!("reports identical ({} bytes)", ta.len());
        return Ok(ExitCode::SUCCESS);
    }
    let la: Vec<&str> = ta.lines().collect();
    let lb: Vec<&str> = tb.lines().collect();
    let common_prefix = la.iter().zip(&lb).take_while(|(x, y)| x == y).count();
    let common_suffix = la[common_prefix..]
        .iter()
        .rev()
        .zip(lb[common_prefix..].iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let cap = 40;
    let print_side = |tag: &str, file: &str, lines: &[&str]| {
        println!(
            "--- {tag} {file} (lines {}..{})",
            common_prefix + 1,
            common_prefix + lines.len()
        );
        for line in lines.iter().take(cap) {
            println!("{tag} {line}");
        }
        if lines.len() > cap {
            println!("{tag} ... ({} more line(s))", lines.len() - cap);
        }
    };
    print_side("<", a, &la[common_prefix..la.len() - common_suffix]);
    print_side(">", b, &lb[common_prefix..lb.len() - common_suffix]);
    println!(
        "reports differ: {} vs {} line(s), {} shared at head, {} at tail",
        la.len(),
        lb.len(),
        common_prefix,
        common_suffix
    );
    Ok(ExitCode::FAILURE)
}

fn cmd_export(opts: &Options) -> Result<(), String> {
    let [dir] = opts.inputs.as_slice() else {
        return Err("export takes exactly one directory".into());
    };
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create '{}': {e}", dir.display()))?;
    let specs = builtin_specs();
    for spec in &specs {
        let path = dir.join(format!("{}.toml", spec.name));
        std::fs::write(&path, spec.to_toml())
            .map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    println!("{} scenario(s) exported", specs.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_options(rest) {
        Ok(opts) => opts,
        Err(e) => return fail(e),
    };
    let result = match command.as_str() {
        "run" => cmd_run(&opts).map(|()| ExitCode::SUCCESS),
        "check" => cmd_check(&opts).map(|()| ExitCode::SUCCESS),
        "list" => cmd_list(&opts).map(|()| ExitCode::SUCCESS),
        "smoke" => cmd_smoke(&opts).map(|()| ExitCode::SUCCESS),
        "campaign" => cmd_campaign(&opts),
        "diff" => cmd_diff(&opts),
        "export" => cmd_export(&opts).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return fail(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}
