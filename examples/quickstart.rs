//! Quickstart: build a small irregular loop, parallelize it with the
//! HELIX-RC toolchain, and compare against sequential execution.
//!
//! Run with `cargo run --release --example quickstart`.

use helix_rc::hcc::{compile, HccConfig};
use helix_rc::ir::{AddrExpr, BinOp, ProgramBuilder, Ty};
use helix_rc::sim::{simulate, simulate_sequential, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A small "irregular" loop: stream an array, and conditionally
    // update a shared histogram cell — a loop-carried memory dependence
    // no pure compiler can remove.
    let mut b = ProgramBuilder::new("quickstart");
    let data = b.region("data", 64 * 1024, Ty::I64);
    let hist = b.region("hist", 1024, Ty::I64);
    b.counted_loop(0, 4000, 1, |b, i| {
        let x = b.reg();
        b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        b.alu_chain(x, 8); // private work
        let h = b.reg();
        b.bin(h, BinOp::And, x, 127i64);
        let cell = b.reg();
        b.load(cell, AddrExpr::region_indexed(hist, h, 8, 0), Ty::I64);
        b.bin(cell, BinOp::Add, cell, 1i64);
        b.store(cell, AddrExpr::region_indexed(hist, h, 8, 0), Ty::I64);
    });
    let program = b.finish();

    // Compile with HCCv3 (the HELIX-RC compiler) for 16 cores.
    let compiled = compile(&program, &HccConfig::v3(16))?;
    println!(
        "compiled: {} loop(s) parallelized, {} sequential segment(s), coverage {:.1}%",
        compiled.plans.len(),
        compiled.stats.segments,
        100.0 * compiled.stats.coverage
    );

    // Simulate sequential vs. HELIX-RC execution.
    let fuel = 1 << 26;
    let seq = simulate_sequential(&program, &MachineConfig::conventional(16), fuel)?;
    let par = simulate(&compiled, &MachineConfig::helix_rc(16), fuel)?;
    assert!(par.race_violations.is_empty());
    assert!(seq.mem_digest != 0);

    println!("sequential: {:>9} cycles", seq.cycles);
    println!("HELIX-RC  : {:>9} cycles on 16 cores", par.cycles);
    println!("speedup   : {:.2}x", seq.cycles as f64 / par.cycles as f64);
    Ok(())
}
