//! Lane-exactness pins: batched lane-parallel campaign execution is a
//! pure performance feature — a report produced with any lane width,
//! engine selection, or shared-cache configuration must be
//! byte-identical to the single-lane per-cell baseline. These tests
//! enforce that across every committed scenario (the paper campaign),
//! across the engine axis (tree / decoded / batched), and under the
//! chaos harness (fault-injected cells stay isolated from their
//! batched neighbours).

use helix_rc::campaign::{load_campaign, run_campaign_with, CampaignRunOptions};
use helix_rc::resilient::FaultPlan;
use helix_rc::sim::EngineSel;
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn lanes(n: usize) -> CampaignRunOptions {
    CampaignRunOptions {
        lanes: n,
        ..CampaignRunOptions::default()
    }
}

/// The committed paper campaign — every committed scenario through
/// every experiment family — reports byte-identically whether cells
/// run standalone or batched over shared decodes.
#[test]
fn batched_paper_campaign_is_byte_identical_to_per_cell() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/paper.toml")).expect("paper campaign loads");
    let baseline =
        run_campaign_with(&spec, &scenarios, &CampaignRunOptions::default()).expect("per-cell run");
    assert!(baseline.failures.is_empty(), "{:?}", baseline.failures);
    // lanes=4 leaves each scenario's cells spanning several session
    // chunks, so chunk boundaries are exercised too (wider widths only
    // repeat the same ~40s campaign without new coverage).
    let batched = run_campaign_with(&spec, &scenarios, &lanes(4)).expect("batched run");
    assert_eq!(
        batched.to_json(),
        baseline.to_json(),
        "lanes=4 report differs from the per-cell baseline"
    );
}

/// The engine axis is invisible in reports: tree interpreter, decoded,
/// and batched (single- and multi-lane) smoke-campaign runs all emit
/// the same bytes.
#[test]
fn engine_selection_never_changes_report_bytes() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/smoke.toml")).expect("smoke campaign loads");
    let baseline =
        run_campaign_with(&spec, &scenarios, &CampaignRunOptions::default()).expect("baseline");
    assert!(baseline.failures.is_empty());
    for (engine, width) in [
        (EngineSel::Tree, 1),
        (EngineSel::Decoded, 1),
        (EngineSel::Batched, 1),
        (EngineSel::Tree, 4),
        (EngineSel::Batched, 4),
    ] {
        let run = run_campaign_with(
            &spec,
            &scenarios,
            &CampaignRunOptions {
                engine: Some(engine),
                lanes: width,
                ..CampaignRunOptions::default()
            },
        )
        .expect("engine run");
        assert_eq!(
            run.to_json(),
            baseline.to_json(),
            "engine={engine:?} lanes={width} report differs"
        );
    }
}

/// Failure isolation survives batching: a chaos plan injecting panics
/// into a deterministic subset of cells produces the same failures —
/// and the same surviving rows, byte for byte — at any lane width.
/// Fault-injected cells run single-lane without the shared cache, so a
/// panicking cell can neither corrupt nor seed its neighbours.
#[test]
fn chaos_failure_isolation_is_lane_invariant() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/smoke.toml")).expect("smoke campaign loads");
    let plan = FaultPlan {
        seed: 7,
        panics: 2,
        stalls: 0,
        blowouts: 0,
        stall_ms: 0,
        transient: false,
    };
    let single = run_campaign_with(
        &spec,
        &scenarios,
        &CampaignRunOptions {
            faults: Some(plan.clone()),
            ..CampaignRunOptions::default()
        },
    )
    .expect("single-lane chaos run");
    assert_eq!(single.failures.len(), 2, "exactly the injected panics");
    let batched = run_campaign_with(
        &spec,
        &scenarios,
        &CampaignRunOptions {
            faults: Some(plan),
            lanes: 4,
            ..CampaignRunOptions::default()
        },
    )
    .expect("batched chaos run");
    assert_eq!(
        batched.to_json(),
        single.to_json(),
        "chaos run must be lane-invariant (same failures, same survivors)"
    );
}
