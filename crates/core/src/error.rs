//! Structured errors for the whole facade.
//!
//! Every fallible path in `helix_rc` — spec parsing, program
//! generation, compilation, simulation, campaign execution, the
//! service protocol — reports a [`HelixError`]: a classified kind plus
//! optional file/field/value context. The kind maps to a stable
//! machine-readable code ([`ErrorKind::code`]) carried verbatim in
//! service JSON responses, and to the CLI's exit-code contract
//! ([`ErrorKind::exit_code`]): usage errors exit 2, everything else 1
//! (a campaign that *completed* with failed cells exits 3, which is
//! not an error at this layer).
//!
//! The rendering contract from the fault-tolerance PR is preserved:
//! spec errors keep their field/value-naming `describe()` text in
//! [`HelixError::message`], and `Display` prefixes the offending file
//! when one is known, so CLI output is unchanged while JSON consumers
//! get the structure.

use helix_hcc::CompileError;
use helix_sim::SimError;
use helix_workloads::SpecError;
use std::fmt;

/// Classification of a [`HelixError`], the coarse axis every consumer
/// (CLI exit codes, service error codes, retry policy) switches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The caller asked for something malformed at the command/request
    /// level (bad flags, wrong arity, conflicting options).
    Usage,
    /// Reading or writing a file failed.
    Io,
    /// A scenario or campaign spec failed to parse or validate. The
    /// message preserves the spec layer's field/value-naming rendering.
    Spec,
    /// The compile/simulate pipeline failed (invalid program, race or
    /// protocol violation, functional fault).
    Sim,
    /// A simulation exhausted its cycle budget. Deterministic: the
    /// same cell trips the same budget at the same cycle every run.
    Budget,
    /// A service request line could not be decoded (invalid JSON,
    /// unknown type, missing or mistyped field).
    Protocol,
    /// Anything not classified above.
    Internal,
}

impl ErrorKind {
    /// Stable machine-readable code, carried in service JSON responses.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Usage => "E_USAGE",
            ErrorKind::Io => "E_IO",
            ErrorKind::Spec => "E_SPEC",
            ErrorKind::Sim => "E_SIM",
            ErrorKind::Budget => "E_BUDGET",
            ErrorKind::Protocol => "E_PROTOCOL",
            ErrorKind::Internal => "E_INTERNAL",
        }
    }

    /// Inverse of [`ErrorKind::code`], for wire decoding.
    pub fn from_code(code: &str) -> Option<ErrorKind> {
        Some(match code {
            "E_USAGE" => ErrorKind::Usage,
            "E_IO" => ErrorKind::Io,
            "E_SPEC" => ErrorKind::Spec,
            "E_SIM" => ErrorKind::Sim,
            "E_BUDGET" => ErrorKind::Budget,
            "E_PROTOCOL" => ErrorKind::Protocol,
            "E_INTERNAL" => ErrorKind::Internal,
            _ => return None,
        })
    }

    /// CLI exit code for an error of this kind (the long-standing
    /// contract: 2 for usage errors, 1 for hard failures).
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Usage => 2,
            _ => 1,
        }
    }
}

/// A classified error with optional context: the file it arose from and
/// the field/value pair that triggered it, when the construction site
/// knows them.
#[derive(Debug, Clone, PartialEq)]
pub struct HelixError {
    /// Classification (drives error codes and exit codes).
    pub kind: ErrorKind,
    /// Human-readable description. For spec errors this preserves the
    /// spec layer's field/value-naming rendering verbatim.
    pub message: String,
    /// File the error arose from, when known.
    pub file: Option<String>,
    /// Field or key that triggered the error, when known.
    pub field: Option<String>,
    /// Offending value, when known.
    pub value: Option<String>,
}

impl HelixError {
    /// Build an error of `kind` with a bare message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> HelixError {
        HelixError {
            kind,
            message: message.into(),
            file: None,
            field: None,
            value: None,
        }
    }

    /// Shorthand for a [`ErrorKind::Usage`] error.
    pub fn usage(message: impl Into<String>) -> HelixError {
        HelixError::new(ErrorKind::Usage, message)
    }

    /// Shorthand for a [`ErrorKind::Protocol`] error.
    pub fn protocol(message: impl Into<String>) -> HelixError {
        HelixError::new(ErrorKind::Protocol, message)
    }

    /// Shorthand for a [`ErrorKind::Io`] error.
    pub fn io(message: impl Into<String>) -> HelixError {
        HelixError::new(ErrorKind::Io, message)
    }

    /// Attach the file the error arose from.
    pub fn with_file(mut self, file: impl Into<String>) -> HelixError {
        self.file = Some(file.into());
        self
    }

    /// Attach the field/key that triggered the error.
    pub fn with_field(mut self, field: impl Into<String>) -> HelixError {
        self.field = Some(field.into());
        self
    }

    /// Attach the offending value.
    pub fn with_value(mut self, value: impl Into<String>) -> HelixError {
        self.value = Some(value.into());
        self
    }
}

impl fmt::Display for HelixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}: ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for HelixError {}

impl From<String> for HelixError {
    fn from(message: String) -> HelixError {
        HelixError::new(ErrorKind::Internal, message)
    }
}

impl From<&str> for HelixError {
    fn from(message: &str) -> HelixError {
        HelixError::new(ErrorKind::Internal, message)
    }
}

impl From<SpecError> for HelixError {
    fn from(e: SpecError) -> HelixError {
        // Keep the Display rendering ("scenario spec error: ...") so
        // CLI messages are unchanged by the restructure.
        HelixError::new(ErrorKind::Spec, e.to_string())
    }
}

impl From<SimError> for HelixError {
    fn from(e: SimError) -> HelixError {
        let kind = match &e {
            SimError::FuelExhausted { .. } => ErrorKind::Budget,
            _ => ErrorKind::Sim,
        };
        HelixError::new(kind, e.to_string())
    }
}

impl From<helix_ir::interp::InterpError> for HelixError {
    fn from(e: helix_ir::interp::InterpError) -> HelixError {
        let kind = match &e {
            helix_ir::interp::InterpError::FuelExhausted => ErrorKind::Budget,
            _ => ErrorKind::Sim,
        };
        HelixError::new(kind, e.to_string())
    }
}

impl From<CompileError> for HelixError {
    fn from(e: CompileError) -> HelixError {
        HelixError::new(ErrorKind::Sim, e.to_string())
    }
}

impl From<std::io::Error> for HelixError {
    fn from(e: std::io::Error) -> HelixError {
        HelixError::new(ErrorKind::Io, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_are_stable() {
        for kind in [
            ErrorKind::Usage,
            ErrorKind::Io,
            ErrorKind::Spec,
            ErrorKind::Sim,
            ErrorKind::Budget,
            ErrorKind::Protocol,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_code(kind.code()), Some(kind));
        }
        // Pinned spellings: these are part of the wire protocol.
        assert_eq!(ErrorKind::Spec.code(), "E_SPEC");
        assert_eq!(ErrorKind::Protocol.code(), "E_PROTOCOL");
        assert_eq!(ErrorKind::from_code("E_NOPE"), None);
    }

    #[test]
    fn exit_codes_match_cli_contract() {
        assert_eq!(ErrorKind::Usage.exit_code(), 2);
        assert_eq!(ErrorKind::Spec.exit_code(), 1);
        assert_eq!(ErrorKind::Internal.exit_code(), 1);
    }

    #[test]
    fn fuel_exhaustion_classifies_as_budget() {
        let e = HelixError::from(SimError::FuelExhausted { cycles: 42 });
        assert_eq!(e.kind, ErrorKind::Budget);
        assert!(e.message.contains("42"));
    }

    #[test]
    fn spec_errors_preserve_describe_rendering() {
        let spec_err = helix_workloads::ScenarioSpec::from_toml("name = 12\n").unwrap_err();
        let rendered = spec_err.to_string();
        let e = HelixError::from(spec_err);
        assert_eq!(e.kind, ErrorKind::Spec);
        assert_eq!(e.message, rendered);
    }

    #[test]
    fn display_prefixes_file_context() {
        let e = HelixError::new(ErrorKind::Spec, "bad value")
            .with_file("scenarios/x.toml")
            .with_field("grid.cores")
            .with_value("-3");
        assert_eq!(e.to_string(), "scenarios/x.toml: bad value");
        assert_eq!(e.field.as_deref(), Some("grid.cores"));
    }
}
