//! # helix-ir
//!
//! Typed loop-level intermediate representation for the HELIX-RC
//! reproduction: programs, control-flow analyses, and an executing,
//! resumable interpreter.
//!
//! This crate is the substrate the rest of the workspace builds on:
//!
//! * [`ProgramBuilder`] constructs programs with structured helpers
//!   (counted loops, diamonds, while loops);
//! * [`cfg`](mod@cfg) discovers dominators, natural loops, and the loop nesting
//!   forest the compiler's loop selector walks;
//! * [`interp`] executes programs functionally — the cycle-level
//!   simulator in `helix-sim` drives [`interp::Thread`]s one instruction
//!   at a time so functional and timing state advance together;
//! * [`trace`] exposes the hooks used to collect dynamic dependences
//!   (the ground truth for Fig. 2's analysis-accuracy experiment).
//!
//! The instruction set includes the paper's two ISA extensions, `wait`
//! and `signal` (§3.1), which are functionally inert in sequential
//! execution and acquire their synchronization semantics in the
//! simulator.
//!
//! # Examples
//!
//! ```
//! use helix_ir::{ProgramBuilder, BinOp, interp};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let acc = b.reg();
//! b.const_i(acc, 0);
//! b.counted_loop(0, 100, 1, |b, i| {
//!     b.bin(acc, BinOp::Add, acc, i);
//! });
//! let program = b.finish();
//!
//! let mut env = interp::Env::for_program(&program);
//! let thread = interp::run_to_completion(&program, &mut env)?;
//! assert_eq!(thread.regs[acc.index()].as_int(), 4950);
//! # Ok::<(), helix_ir::interp::InterpError>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod decode;
pub mod dist;
pub mod inst;
pub mod interp;
pub mod memory;
pub mod program;
pub mod rng;
pub mod trace;

mod pretty;
mod types;

pub use builder::ProgramBuilder;
pub use decode::{decode, DecodedProgram};
pub use dist::Distribution;
pub use inst::{
    AddrBase, AddrExpr, BinOp, Inst, InstOrigin, Intrinsic, Operand, SharedTag, Terminator,
    TrafficClass, UnOp,
};
pub use program::{Block, Graph, Program, RegionDecl, ValidateError};
pub use trace::{InstSite, MemAccess, TraceSink};
pub use types::{BlockId, Reg, RegionId, SegmentId, Ty, Value};
