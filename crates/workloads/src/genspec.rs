//! Seed-deterministic random scenario generation for `helix explore`.
//!
//! This is the reusable form of the round-trip proptest strategy in
//! `tests/proptest_spec.rs`: the same fixed region scaffold (`in`,
//! `mid`, `grid`, `tab`, `lens`, `out`), the same
//! Fill -> Doall -> HotLoop pipeline with an optional carry chain and
//! an optional two-nest re-expression — but driven by a [`SplitMix64`]
//! stream instead of proptest's runner, so any `(seed, index)` pair
//! names exactly one [`ScenarioSpec`], bit-identically, on every
//! platform and in every process. The explore subsystem leans on that:
//! a frontier hit found in CI is reproducible locally from its
//! coordinates alone, with no corpus files to ship.
//!
//! On top of the proptest scaffold the generator draws from the full
//! distribution space, including the server-traffic shapes
//! ([`Distribution::OpenLoop`], [`Distribution::ClosedLoop`],
//! [`Distribution::TailBurst`]) that the committed 1000-series
//! scenarios were curated from.

use crate::spec::{
    CarryOp, CarryOperand, CarrySpec, CountExpr, ElemTy, HotLoopSpec, NestSpec, OpSpec, PhaseSpec,
    RegionSpec, RunSpec, ScenarioSpec, UpdateOp, UpdateValue,
};
use crate::Kind;
use helix_ir::rng::SplitMix64;
use helix_ir::Distribution;

/// Masks drawn for table/guard/chase ops — all strictly below the
/// scaffold's 256-word `tab` region so indexability holds at any scale.
const MASKS: [i64; 5] = [1, 3, 15, 127, 255];

/// A deterministic scenario generator: a pure function from
/// `(seed, index)` to a valid [`ScenarioSpec`].
#[derive(Debug, Clone, Copy)]
pub struct SpecGen {
    seed: u64,
}

impl SpecGen {
    /// A generator for the given stream seed.
    pub fn new(seed: u64) -> Self {
        SpecGen { seed }
    }

    /// The `index`-th spec of this generator's stream. Pure: the same
    /// `(seed, index)` always produces the same spec, and each index
    /// gets an independent [`SplitMix64`] substream, so specs can be
    /// produced in any order or in parallel.
    pub fn spec(&self, index: u64) -> ScenarioSpec {
        // Seeding SplitMix64 at seed + index * golden-gamma IS the
        // SplitMix64 stream-split construction, so substreams are as
        // independent as consecutive draws.
        let mut rng = SplitMix64::new(
            self.seed
                .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let base_n = range(&mut rng, 50, 400);
        let seed = rng.next_u64() as i64;
        let with_carry = flip(&mut rng);
        let doall_work = range(&mut rng, 1, 30);
        let n_ops = range(&mut rng, 1, 5) as usize;
        let ops: Vec<OpSpec> = (0..n_ops).map(|_| op(&mut rng, with_carry)).collect();
        let cores = range(&mut rng, 2, 33);
        let machines = range(&mut rng, 0, 3) as usize + 1;
        let multi_nest = flip(&mut rng);
        let glue_front = range(&mut rng, 0, 200);
        let glue_back = range(&mut rng, 1, 200);

        let carry = with_carry.then(|| CarrySpec {
            init: seed % 1000,
            out: "out".into(),
        });
        let mut spec = ScenarioSpec {
            name: format!("gen.{:016x}.{index}", self.seed),
            description: format!("explore-generated spec #{index} of seed {:#x}", self.seed),
            kind: Kind::Int,
            base_n,
            seed,
            regions: vec![
                ri("in", CountExpr::n_plus(1)),
                ri("mid", CountExpr::n_plus(1)),
                ri("grid", CountExpr::fixed(1024)),
                ri("tab", CountExpr::fixed(256)),
                ri("lens", CountExpr::n_plus(1)),
                ri("out", CountExpr::fixed(8)),
            ],
            phases: vec![
                PhaseSpec::Fill {
                    region: "in".into(),
                    count: CountExpr::n(),
                    seed: seed % 97,
                },
                PhaseSpec::Doall {
                    input: "in".into(),
                    output: "mid".into(),
                    count: CountExpr::n(),
                    work: doall_work,
                },
                PhaseSpec::HotLoop(HotLoopSpec {
                    trips: CountExpr::n(),
                    input: Some("mid".into()),
                    carry,
                    ops,
                }),
            ],
            nests: vec![],
            run: RunSpec {
                cores,
                machines: RunSpec::default().machines[..machines].to_vec(),
                ..RunSpec::default()
            },
        };
        // Half the stream re-expresses the same pipeline as two nests
        // with glue, carried state, and a private region, covering the
        // multi-nest axis (and the per-nest oracles downstream).
        if multi_nest {
            let phases = std::mem::take(&mut spec.phases);
            spec.nests = vec![
                NestSpec {
                    name: "front".into(),
                    glue: CountExpr::fixed(glue_front),
                    import: None,
                    export: Some("out".into()),
                    regions: vec![],
                    phases: phases[..2].to_vec(),
                },
                NestSpec {
                    name: "back".into(),
                    glue: CountExpr::fixed(glue_back),
                    import: Some("out".into()),
                    export: None,
                    regions: vec![ri("scratchpad", CountExpr::fixed(64))],
                    phases: phases[2..].to_vec(),
                },
            ];
        }
        spec
    }
}

/// The `index`-th spec of seed `seed`'s stream — shorthand for
/// [`SpecGen::new`] + [`SpecGen::spec`].
pub fn generated_spec(seed: u64, index: u64) -> ScenarioSpec {
    SpecGen::new(seed).spec(index)
}

fn ri(name: &str, size: CountExpr) -> RegionSpec {
    RegionSpec {
        name: name.into(),
        size,
        elem: ElemTy::I64,
    }
}

/// Uniform over the half-open range `lo..hi` (proptest range idiom).
fn range(rng: &mut SplitMix64, lo: i64, hi: i64) -> i64 {
    lo + rng.next_below((hi - lo) as u64) as i64
}

fn flip(rng: &mut SplitMix64) -> bool {
    rng.next_below(2) == 0
}

fn mask(rng: &mut SplitMix64) -> i64 {
    MASKS[rng.next_below(MASKS.len() as u64) as usize]
}

/// One draw over the full distribution space, server-traffic shapes
/// included. Parameter ranges match the proptest strategy where a
/// variant exists there.
fn dist(rng: &mut SplitMix64) -> Distribution {
    match rng.next_below(9) {
        0 => Distribution::Fixed {
            value: range(rng, 1, 40),
        },
        1 => Distribution::Uniform {
            lo: range(rng, 1, 10),
            hi: range(rng, 10, 80),
        },
        2 => Distribution::Bursty {
            short: range(rng, 1, 8),
            long: range(rng, 40, 200),
            period: range(rng, 2, 32),
        },
        3 => Distribution::Geometric {
            mean: range(rng, 2, 12),
            cap: range(rng, 20, 99),
        },
        4 => Distribution::Zipf {
            max: 1 << range(rng, 5, 11),
        },
        5 => Distribution::PhaseChange {
            low: range(rng, 1, 8),
            high: range(rng, 30, 120),
            period: 1 << range(rng, 3, 7),
        },
        6 => Distribution::OpenLoop {
            mean: range(rng, 1, 6),
            service: range(rng, 2, 20),
        },
        7 => Distribution::ClosedLoop {
            users: range(rng, 2, 32),
            think: range(rng, 2, 16),
            service: range(rng, 2, 12),
        },
        _ => Distribution::TailBurst {
            base: range(rng, 1, 8),
            max: 1 << range(rng, 5, 9),
            period: range(rng, 4, 32),
        },
    }
}

/// Ops valid anywhere in the body (the loop streams `mid`, so the
/// current value is always available; regions are the fixed scaffold).
fn leaf_op(rng: &mut SplitMix64, has_carry: bool) -> OpSpec {
    let arms = if has_carry { 10 } else { 9 };
    match rng.next_below(arms) {
        0 => OpSpec::Work {
            insts: range(rng, 1, 60),
        },
        1 => OpSpec::Stream {
            region: "grid".into(),
            stride: range(rng, 1, 997),
        },
        2 => OpSpec::Table {
            region: "tab".into(),
            shift: range(rng, 0, 3) * 10,
            mask: mask(rng),
            op: if flip(rng) {
                UpdateOp::Add
            } else {
                UpdateOp::Xor
            },
            value: if flip(rng) {
                UpdateValue::One
            } else {
                UpdateValue::Cur
            },
        },
        3 => OpSpec::ChainHead {
            region: "tab".into(),
            mask: mask(rng),
        },
        4 => OpSpec::Bump {
            region: "out".into(),
        },
        5 => OpSpec::ScaleStore {
            region: "mid".into(),
            factor: range(rng, 2, 9),
        },
        6 => OpSpec::Store {
            region: "mid".into(),
        },
        7 => OpSpec::PtrChase {
            region: "tab".into(),
            hops: range(rng, 1, 4),
            mask: mask(rng),
        },
        8 => OpSpec::VarWork {
            region: "lens".into(),
            dist: dist(rng),
        },
        _ => OpSpec::Carry {
            op: match rng.next_below(5) {
                0 => CarryOp::Add,
                1 => CarryOp::Xor,
                2 => CarryOp::Mul,
                3 => CarryOp::Shl,
                _ => CarryOp::Min,
            },
            operand: if flip(rng) {
                CarryOperand::Cur
            } else {
                CarryOperand::Imm(range(rng, 1, 100))
            },
        },
    }
}

/// A body op: three leaves to one guard, whose branches hold leaves.
fn op(rng: &mut SplitMix64, has_carry: bool) -> OpSpec {
    if rng.next_below(4) != 0 {
        return leaf_op(rng, has_carry);
    }
    let mask = mask(rng);
    let n_then = range(rng, 1, 3) as usize;
    let n_else = range(rng, 0, 3) as usize;
    OpSpec::Guard {
        mask,
        then_ops: (0..n_then).map(|_| leaf_op(rng, has_carry)).collect(),
        else_ops: (0..n_else).map(|_| leaf_op(rng, has_carry)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::Scale;

    #[test]
    fn generation_is_deterministic_and_order_independent() {
        let g = SpecGen::new(42);
        let forward: Vec<ScenarioSpec> = (0..16).map(|i| g.spec(i)).collect();
        let backward: Vec<ScenarioSpec> = (0..16).rev().map(|i| g.spec(i)).collect();
        for (i, spec) in forward.iter().enumerate() {
            assert_eq!(spec, &backward[15 - i], "index {i}");
            assert_eq!(spec, &generated_spec(42, i as u64), "index {i}");
        }
        // Distinct indices produce distinct specs (names differ at
        // minimum; bodies should too for nearly all pairs).
        assert!(forward.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn every_generated_spec_is_valid_and_lowers() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let g = SpecGen::new(seed);
            for index in 0..40 {
                let spec = g.spec(index);
                spec.validate()
                    .unwrap_or_else(|e| panic!("seed {seed} index {index}: {e}"));
                generate(&spec, Scale::Test)
                    .unwrap_or_else(|e| panic!("seed {seed} index {index}: {e}"));
            }
        }
    }

    #[test]
    fn generated_specs_round_trip_through_toml() {
        let g = SpecGen::new(3);
        for index in 0..25 {
            let spec = g.spec(index);
            let parsed = ScenarioSpec::from_toml(&spec.to_toml())
                .unwrap_or_else(|e| panic!("index {index}: {e}"));
            assert_eq!(parsed, spec, "index {index}");
        }
    }

    #[test]
    fn stream_covers_the_whole_distribution_space() {
        let g = SpecGen::new(1);
        let mut seen: Vec<&'static str> = Vec::new();
        for index in 0..400 {
            for kind in g.spec(index).dist_kinds() {
                if !seen.contains(&kind) {
                    seen.push(kind);
                }
            }
        }
        for kind in [
            "fixed",
            "uniform",
            "bursty",
            "geometric",
            "zipf",
            "phase_change",
            "open_loop",
            "closed_loop",
            "tail_burst",
        ] {
            assert!(seen.contains(&kind), "{kind} never generated");
        }
    }

    #[test]
    fn stream_covers_both_nest_shapes_and_carry() {
        let g = SpecGen::new(2);
        let specs: Vec<ScenarioSpec> = (0..32).map(|i| g.spec(i)).collect();
        assert!(specs.iter().any(|s| s.nests.is_empty()));
        assert!(specs.iter().any(|s| s.nests.len() == 2));
        let has_carry = |s: &ScenarioSpec| {
            let hot = |p: &[PhaseSpec]| {
                p.iter()
                    .any(|ph| matches!(ph, PhaseSpec::HotLoop(hl) if hl.carry.is_some()))
            };
            hot(&s.phases) || s.nests.iter().any(|n| hot(&n.phases))
        };
        assert!(specs.iter().any(has_carry));
        assert!(specs.iter().any(|s| !has_carry(s)));
    }
}
