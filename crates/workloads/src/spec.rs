//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is a plain data description of a workload — its
//! memory regions, a pipeline of phase templates (coarse DOALL phases,
//! irregular hot loops with composable body operations, and the
//! benchmark-shaped templates the SPEC stand-ins need), and the
//! machine/sweep configuration to run it under. Specs serialize to a
//! small TOML subset (see [`crate::toml`]) so opening a new workload is
//! a data-file change, not a code change: drop a `.toml` into
//! `scenarios/` and the `helix` CLI compiles and simulates it.
//!
//! The ten SPEC CPU2000 stand-ins are themselves expressed as specs
//! ([`builtin_specs`](crate::spec_builtin::builtin_specs)); the generator lowers them to programs
//! bit-identical to the hand-coded constructors in [`crate::cint`] /
//! [`crate::cfp`], which the test suite pins.

use crate::common::Scale;
use crate::toml::{self, Table, Value};
use crate::Kind;
use helix_ir::Distribution;
use std::fmt;

/// Error from parsing, validating, or generating a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description.
    pub message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> SpecError {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

type Result<T> = std::result::Result<T, SpecError>;

/// Upper bound on spec parameters that drive host-side work — problem
/// sizes, emitted-instruction counts (ALU chains, pointer hops), and
/// distribution samples. Anything beyond this is a typo, and bounding
/// the values keeps both generation (which unrolls some of these) and
/// `sample`'s integer arithmetic far from overflow.
const MAX_SPEC_PARAM: i64 = 1 << 20;

/// Check a count-like parameter against [`MAX_SPEC_PARAM`].
fn check_param(v: i64, what: &str) -> Result<()> {
    if (1..=MAX_SPEC_PARAM).contains(&v) {
        Ok(())
    } else {
        Err(SpecError::new(format!(
            "{what} must be in 1..={MAX_SPEC_PARAM}, got {v}"
        )))
    }
}

/// Like [`check_param`] but zero is allowed (glue weights may be absent).
fn check_param0(v: i64, what: &str) -> Result<()> {
    if (0..=MAX_SPEC_PARAM).contains(&v) {
        Ok(())
    } else {
        Err(SpecError::new(format!(
            "{what} must be in 0..={MAX_SPEC_PARAM}, got {v}"
        )))
    }
}

fn validate_dist(dist: &Distribution) -> Result<()> {
    let check =
        |v: i64, what: &str| -> Result<()> { check_param(v, &format!("distribution {what}")) };
    match *dist {
        Distribution::Fixed { value } => check(value, "value"),
        Distribution::Uniform { lo, hi } => {
            check(lo, "lo")?;
            check(hi, "hi")?;
            if lo > hi {
                return Err(SpecError::new(format!(
                    "uniform distribution needs lo <= hi, got {lo}..{hi}"
                )));
            }
            Ok(())
        }
        Distribution::Bursty {
            short,
            long,
            period,
        } => {
            check(short, "short")?;
            check(long, "long")?;
            check(period, "period")
        }
        Distribution::Geometric { mean, cap } => {
            check(mean, "mean")?;
            check(cap, "cap")
        }
        Distribution::Zipf { max } => check(max, "max"),
        Distribution::PhaseChange { low, high, period } => {
            check(low, "low")?;
            check(high, "high")?;
            check(period, "period")
        }
        Distribution::OpenLoop { mean, service } => {
            // Sampling draws 8*mean Bernoulli trials per table slot, so
            // the arrival rate gets a much tighter bound than the
            // generic parameter ceiling.
            check(mean, "mean")?;
            if mean > 1024 {
                return Err(SpecError::new(format!(
                    "open_loop distribution mean must be <= 1024, got {mean}"
                )));
            }
            check(service, "service")
        }
        Distribution::ClosedLoop {
            users,
            think,
            service,
        } => {
            // One Bernoulli trial per user per table slot; bound the
            // population so baking work tables stays cheap.
            check(users, "users")?;
            if users > 4096 {
                return Err(SpecError::new(format!(
                    "closed_loop distribution users must be <= 4096, got {users}"
                )));
            }
            check(think, "think")?;
            check(service, "service")
        }
        Distribution::TailBurst { base, max, period } => {
            check(base, "base")?;
            check(max, "max")?;
            check(period, "period")
        }
    }
}

/// A linear expression in the scenario's scaled problem size `n`:
/// `per_n * n + plus`. Serialized as `"n"`, `"n+1"`, `"2n+8"`, `"1024"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountExpr {
    /// Coefficient on `n`.
    pub per_n: i64,
    /// Constant term.
    pub plus: i64,
}

impl CountExpr {
    /// The expression `n`.
    pub fn n() -> CountExpr {
        CountExpr { per_n: 1, plus: 0 }
    }

    /// The expression `n + plus`.
    pub fn n_plus(plus: i64) -> CountExpr {
        CountExpr { per_n: 1, plus }
    }

    /// A constant, independent of `n`.
    pub fn fixed(plus: i64) -> CountExpr {
        CountExpr { per_n: 0, plus }
    }

    /// Evaluate at problem size `n`.
    pub fn eval(&self, n: i64) -> i64 {
        self.per_n * n + self.plus
    }

    fn render(&self) -> String {
        match (self.per_n, self.plus) {
            (0, p) => p.to_string(),
            (1, 0) => "n".to_string(),
            (1, p) if p > 0 => format!("n+{p}"),
            (1, p) => format!("n{p}"),
            (k, 0) => format!("{k}n"),
            (k, p) if p > 0 => format!("{k}n+{p}"),
            (k, p) => format!("{k}n{p}"),
        }
    }

    fn parse(text: &str) -> Result<CountExpr> {
        let s = text.trim().replace(' ', "");
        let bad = || SpecError::new(format!("bad count expression '{text}'"));
        if let Some(ix) = s.find('n') {
            let (coef, rest) = s.split_at(ix);
            let coef = coef.strip_suffix('*').unwrap_or(coef);
            let per_n = match coef {
                "" => 1,
                "-" => -1,
                c => c.parse::<i64>().map_err(|_| bad())?,
            };
            let rest = &rest[1..];
            let plus = match rest {
                "" => 0,
                r => {
                    let r = r.strip_prefix('+').unwrap_or(r);
                    r.parse::<i64>().map_err(|_| bad())?
                }
            };
            Ok(CountExpr { per_n, plus })
        } else {
            Ok(CountExpr::fixed(s.parse::<i64>().map_err(|_| bad())?))
        }
    }
}

/// Element type of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    /// 64-bit integers.
    I64,
    /// 64-bit floats.
    F64,
}

impl ElemTy {
    /// The corresponding IR type.
    pub fn ty(self) -> helix_ir::Ty {
        match self {
            ElemTy::I64 => helix_ir::Ty::I64,
            ElemTy::F64 => helix_ir::Ty::F64,
        }
    }
}

/// One declared memory region; `size` is in 8-byte words.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Region name (referenced by phases).
    pub name: String,
    /// Size in words.
    pub size: CountExpr,
    /// Element type.
    pub elem: ElemTy,
}

/// Binary operation applied by a shared-table update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// `table[h] += v`.
    Add,
    /// `table[h] ^= v`.
    Xor,
}

/// Value folded into a shared-table update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateValue {
    /// The constant 1 (histogram counting).
    One,
    /// The loop's current data value.
    Cur,
}

/// Operation applied to the loop-carried register chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarryOp {
    /// `carry += v`.
    Add,
    /// `carry ^= v`.
    Xor,
    /// `carry *= v`.
    Mul,
    /// `carry <<= v`.
    Shl,
    /// `carry = min(carry, v)`.
    Min,
}

/// Operand of a [`CarryOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarryOperand {
    /// The loop's current data value.
    Cur,
    /// An immediate.
    Imm(i64),
}

/// One composable hot-loop body operation. Each operation threads an
/// implicit "current value" register (seeded by the loop's input load)
/// exactly the way the hand-written stand-ins do.
#[derive(Debug, Clone, PartialEq)]
pub enum OpSpec {
    /// A private ALU chain of `insts` dependent instructions.
    Work {
        /// Chain length.
        insts: i64,
    },
    /// Strided read-modify-write walk of a large (power-of-two) region:
    /// cache-hostile private traffic. Produces the loaded value.
    Stream {
        /// Region to walk.
        region: String,
        /// Index stride multiplier.
        stride: i64,
    },
    /// Shared-table update `table[hash] op= value` — one memory-carried
    /// dependence with collision density set by `mask`.
    Table {
        /// Table region.
        region: String,
        /// Right-shift applied to the current value before masking.
        shift: i64,
        /// Index mask (table words - 1 for full coverage).
        mask: i64,
        /// Update operation.
        op: UpdateOp,
        /// Update operand.
        value: UpdateValue,
    },
    /// Hash-chain head replacement (gzip): read `region[h]`, write the
    /// iteration counter back, and continue with the previous head.
    ChainHead {
        /// Chain-head table.
        region: String,
        /// Index mask.
        mask: i64,
    },
    /// Conditional on `cur & mask`, with then/else sub-operations.
    Guard {
        /// Condition mask.
        mask: i64,
        /// Operations when the masked value is non-zero.
        then_ops: Vec<OpSpec>,
        /// Operations otherwise.
        else_ops: Vec<OpSpec>,
    },
    /// One step of the loop-carried register chain (requires the
    /// enclosing loop to declare a carry).
    Carry {
        /// Operation.
        op: CarryOp,
        /// Operand.
        operand: CarryOperand,
    },
    /// Increment the shared scalar at `region[0]` (vpr's bounding-box
    /// accumulator).
    Bump {
        /// Region holding the shared scalar.
        region: String,
    },
    /// `region[i] = cur * factor` — a private output store.
    ScaleStore {
        /// Output region.
        region: String,
        /// Multiplier.
        factor: i64,
    },
    /// `region[i] = cur`.
    Store {
        /// Output region.
        region: String,
    },
    /// Pointer-chasing read-modify-write chain through a shared region:
    /// `hops` serially dependent loads whose addresses come from the
    /// previous hop's (shared, mutated) value — the highest
    /// dependence-density shape the generator can produce.
    PtrChase {
        /// Link region.
        region: String,
        /// Serial hops per iteration.
        hops: i64,
        /// Index mask.
        mask: i64,
    },
    /// Distribution-drawn per-iteration work: a work table baked into
    /// the program bounds an inner loop, giving genuine iteration-length
    /// variation (Fig. 4a shapes).
    VarWork {
        /// Region holding the baked work table (>= trip count words).
        region: String,
        /// Per-iteration work distribution.
        dist: Distribution,
    },
}

/// Loop-carried register chain of a hot loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CarrySpec {
    /// Initial value.
    pub init: i64,
    /// Region receiving the final value (at offset 0).
    pub out: String,
}

/// A generic irregular hot loop: optional input stream, optional carried
/// register chain, and a list of body operations.
#[derive(Debug, Clone, PartialEq)]
pub struct HotLoopSpec {
    /// Trip count.
    pub trips: CountExpr,
    /// Region streamed as `cur = input[i]`, if any.
    pub input: Option<String>,
    /// Register-carried chain, if any.
    pub carry: Option<CarrySpec>,
    /// Body operations in order.
    pub ops: Vec<OpSpec>,
}

/// One phase of a scenario. `Fill`/`Doall`/`HotLoop` compose freely;
/// the remaining templates are the benchmark-shaped loops the SPEC
/// stand-ins need (network-simplex arc relaxation, annealing, and the
/// floating-point kernels).
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseSpec {
    /// Fill `region[0..count]` with `pure_hash(seed + i)`.
    Fill {
        /// Target region.
        region: String,
        /// Element count.
        count: CountExpr,
        /// Hash seed.
        seed: i64,
    },
    /// Coarse DOALL phase `output[i] = work(input[i])` — provably
    /// independent at every analysis tier.
    Doall {
        /// Input region.
        input: String,
        /// Output region.
        output: String,
        /// Trip count.
        count: CountExpr,
        /// Per-iteration ALU chain length.
        work: i64,
    },
    /// Generic irregular hot loop.
    HotLoop(HotLoopSpec),
    /// 181.mcf-shaped network-simplex arc relaxation: indexed endpoint
    /// loads, shared node potentials, and an unpredictable best-cost
    /// register chain.
    ArcRelax {
        /// Arc tail indices.
        tail: String,
        /// Arc head indices.
        head: String,
        /// Arc costs.
        cost: String,
        /// Shared node potentials (power-of-two words = node count).
        pot: String,
        /// Result region.
        out: String,
        /// Arc count.
        trips: CountExpr,
        /// Node count (power of two).
        nodes: i64,
        /// Private pricing-arithmetic chain length.
        chain: i64,
    },
    /// 300.twolf-shaped annealing: a serial outer temperature chain
    /// re-invoking a short hot inner loop of cell swaps.
    Anneal {
        /// Shared cell array (power-of-two words).
        cells: String,
        /// Shared cost table.
        table: String,
        /// Result region.
        out: String,
        /// Outer (serial) trip count.
        outer: CountExpr,
        /// Inner (hot) trip count.
        inner: i64,
        /// Inner index stride.
        stride: i64,
        /// Cell index mask.
        slot_mask: i64,
        /// Private swap-cost chain length.
        chain: i64,
        /// Cost-table index mask.
        table_mask: i64,
    },
    /// 183.equake-shaped serial element driver with a low-trip-count
    /// floating-point kernel inside.
    FpElements {
        /// Displacement array (f64).
        disp: String,
        /// Velocity array (f64).
        vel: String,
        /// Element count (serial outer trips).
        elements: CountExpr,
        /// Kernel trip count.
        trip: i64,
    },
    /// 179.art-shaped in-place normalization with an `FMax` match
    /// reduction.
    FpNormalize {
        /// Layer array (f64), updated in place.
        layer: String,
        /// Preprocessed integer input.
        pre: String,
        /// Result region (f64).
        out: String,
        /// Trip count.
        count: CountExpr,
        /// Initialization index mask.
        mask: i64,
    },
    /// 188.ammp-shaped pair-force loop with second-order (triangular)
    /// induction indexing.
    FpPairForce {
        /// Coordinate array (f64, 2n+8 words).
        atoms: String,
        /// Force output array (f64).
        forces: String,
        /// Trip count.
        count: CountExpr,
        /// Trailing private chain length.
        chain: i64,
    },
    /// 177.mesa-shaped span rasterization where one iteration in
    /// `heavy_mask + 1` takes a slow path (iteration imbalance).
    FpSpan {
        /// Frame buffer (f64).
        frame: String,
        /// Z-buffer input (i64).
        zbuf: String,
        /// Trip count.
        count: CountExpr,
        /// Heavy-path selector mask.
        heavy_mask: i64,
        /// Heavy-path chain length.
        heavy_chain: i64,
    },
}

/// Which compiler generation to run a scenario under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompilerGen {
    /// HCCv1.
    V1,
    /// HCCv2.
    V2,
    /// HCCv3 / HELIX-RC.
    V3,
}

impl CompilerGen {
    fn render(self) -> &'static str {
        match self {
            CompilerGen::V1 => "v1",
            CompilerGen::V2 => "v2",
            CompilerGen::V3 => "v3",
        }
    }

    fn parse(s: &str) -> Result<CompilerGen> {
        match s {
            "v1" => Ok(CompilerGen::V1),
            "v2" => Ok(CompilerGen::V2),
            "v3" => Ok(CompilerGen::V3),
            other => Err(SpecError::new(format!("unknown compiler '{other}'"))),
        }
    }
}

/// Which machine to simulate a scenario on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// The original sequential program on one conventional core.
    Sequential,
    /// The parallel plan on conventional hardware (coupled
    /// communication).
    Conventional,
    /// The parallel plan on the HELIX-RC machine (ring cache).
    HelixRc,
}

impl MachineKind {
    fn render(self) -> &'static str {
        match self {
            MachineKind::Sequential => "sequential",
            MachineKind::Conventional => "conventional",
            MachineKind::HelixRc => "helix-rc",
        }
    }

    fn parse(s: &str) -> Result<MachineKind> {
        match s {
            "sequential" => Ok(MachineKind::Sequential),
            "conventional" => Ok(MachineKind::Conventional),
            "helix-rc" => Ok(MachineKind::HelixRc),
            other => Err(SpecError::new(format!("unknown machine '{other}'"))),
        }
    }
}

/// How to run a scenario: compiler, machines, core count, sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Core count for the main runs.
    pub cores: i64,
    /// Compiler generation.
    pub compiler: CompilerGen,
    /// Machines to simulate, in order.
    pub machines: Vec<MachineKind>,
    /// Cycle budget per simulation.
    pub fuel: u64,
    /// Additional core counts to sweep on the HELIX-RC machine.
    pub sweep_cores: Vec<i64>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            cores: 16,
            compiler: CompilerGen::V3,
            machines: vec![
                MachineKind::Sequential,
                MachineKind::Conventional,
                MachineKind::HelixRc,
            ],
            fuel: 1 << 27,
            sweep_cores: Vec::new(),
        }
    }
}

/// One loop nest of a multi-nest scenario.
///
/// HELIX-RC's headline results come from programs whose runtime is
/// split across *several* hot loop nests with varying coverage, so a
/// scenario can describe an ordered list of nests instead of a single
/// hot-loop pipeline. Each nest carries:
///
/// * its own phase pipeline ([`PhaseSpec`]s, exactly as at top level);
/// * optional **nest-private regions**, visible only to this nest's
///   phases (shared regions stay at the scenario's top level);
/// * a **coverage weight**: `glue` serial iterations emitted before the
///   nest as a while loop the compiler can never parallelize, which is
///   the knob that sweeps how much of the program the parallelized
///   nests cover (Amdahl's sequential fraction);
/// * optional **carried state**: after a nest with `export = "r"` runs,
///   word 0 of region `r` seeds the next glue accumulator, and a nest
///   with `import = "r"` stores that accumulator into `r[0]` before its
///   phases run — a genuine sequential dependence between nests.
#[derive(Debug, Clone, PartialEq)]
pub struct NestSpec {
    /// Nest name (used in reports and nest-boundary metadata).
    pub name: String,
    /// Serial glue iterations preceding this nest (`>= 0`; evaluated at
    /// the scenario's problem size, so weights can scale with `n`).
    pub glue: CountExpr,
    /// Region (top-level/shared) whose word 0 receives the glue
    /// accumulator before this nest's phases run.
    pub import: Option<String>,
    /// Region (top-level/shared) whose word 0 is read after this nest
    /// and carried into the next nest's glue.
    pub export: Option<String>,
    /// Nest-private regions (names must be unique scenario-wide).
    pub regions: Vec<RegionSpec>,
    /// The nest's phase pipeline.
    pub phases: Vec<PhaseSpec>,
}

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (program name; SPEC-style for the stand-ins).
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// Benchmark family.
    pub kind: Kind,
    /// Base problem size (`Scale::Test` runs at `base_n`, `Scale::Full`
    /// at `4 * base_n`).
    pub base_n: i64,
    /// Seed for distribution-driven emission.
    pub seed: i64,
    /// Memory regions, in declaration order. With nests these are the
    /// *shared* regions every nest can reference.
    pub regions: Vec<RegionSpec>,
    /// Phase pipeline (single-nest scenarios; must be empty when
    /// `nests` is used).
    pub phases: Vec<PhaseSpec>,
    /// Ordered loop nests (multi-nest scenarios; empty for the classic
    /// single-pipeline form).
    pub nests: Vec<NestSpec>,
    /// Machine/sweep configuration.
    pub run: RunSpec,
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

impl ScenarioSpec {
    fn region(&self, name: &str) -> Result<&RegionSpec> {
        self.regions
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| SpecError::new(format!("{}: unknown region '{name}'", self.name)))
    }

    /// The problem sizes this spec can run at (one per [`Scale`]);
    /// validation checks every bound at each of them so it can never
    /// desync from what generation will do under `--full`.
    fn scaled_ns(&self) -> [i64; 2] {
        [Scale::Test, Scale::Full].map(|s| s.n(self.base_n))
    }

    fn check_indexable(&self, name: &str, mask: i64) -> Result<()> {
        let r = self.region(name)?;
        if mask < 0 {
            return Err(SpecError::new(format!(
                "{}: mask for region '{name}' must be >= 0, got {mask}",
                self.name
            )));
        }
        // Indexing masks must fit the region at every scale the spec can
        // run at, including regions whose size scales with `n`.
        for n in self.scaled_ns() {
            let words = r.size.eval(n);
            if mask >= words {
                return Err(SpecError::new(format!(
                    "{}: mask {mask} exceeds region '{name}' ({words} words at n={n})",
                    self.name
                )));
            }
        }
        Ok(())
    }

    fn check_pow2(&self, name: &str) -> Result<()> {
        let r = self.region(name)?;
        if r.size.per_n != 0 || r.size.plus <= 0 || r.size.plus & (r.size.plus - 1) != 0 {
            return Err(SpecError::new(format!(
                "{}: region '{name}' must be a fixed power-of-two word count",
                self.name
            )));
        }
        Ok(())
    }

    fn check_ops(&self, ops: &[OpSpec], has_carry: bool, mut cur: bool) -> Result<bool> {
        let need_cur = |what: &str, cur: bool| -> Result<()> {
            if cur {
                Ok(())
            } else {
                Err(SpecError::new(format!(
                    "{}: op '{what}' needs a current value (loop input or a prior stream op)",
                    self.name
                )))
            }
        };
        for op in ops {
            match op {
                OpSpec::Work { insts } => {
                    need_cur("work", cur)?;
                    check_param(*insts, "work insts")?;
                }
                OpSpec::Stream { region, stride } => {
                    self.check_pow2(region)?;
                    check_param(*stride, "stream stride")?;
                    cur = true;
                }
                OpSpec::Table {
                    region,
                    mask,
                    shift,
                    ..
                } => {
                    need_cur("table", cur)?;
                    if !(0..64).contains(shift) {
                        return Err(SpecError::new(format!(
                            "{}: table shift must be in 0..64, got {shift}",
                            self.name
                        )));
                    }
                    self.check_indexable(region, *mask)?;
                }
                OpSpec::ChainHead { region, mask } => {
                    need_cur("chain_head", cur)?;
                    self.check_indexable(region, *mask)?;
                }
                OpSpec::Guard {
                    then_ops, else_ops, ..
                } => {
                    need_cur("guard", cur)?;
                    self.check_ops(then_ops, has_carry, cur)?;
                    self.check_ops(else_ops, has_carry, cur)?;
                }
                OpSpec::Carry { operand, .. } => {
                    if !has_carry {
                        return Err(SpecError::new(format!(
                            "{}: 'carry' op in a loop without a carry declaration",
                            self.name
                        )));
                    }
                    if *operand == CarryOperand::Cur {
                        need_cur("carry", cur)?;
                    }
                }
                OpSpec::Bump { region } => {
                    self.region(region)?;
                }
                OpSpec::ScaleStore { region, .. } => {
                    need_cur("scale_store", cur)?;
                    self.region(region)?;
                }
                OpSpec::Store { region } => {
                    need_cur("store", cur)?;
                    self.region(region)?;
                }
                OpSpec::PtrChase { region, hops, mask } => {
                    need_cur("ptr_chase", cur)?;
                    self.check_indexable(region, *mask)?;
                    check_param(*hops, "ptr_chase hops")?;
                }
                OpSpec::VarWork { region, dist } => {
                    need_cur("var_work", cur)?;
                    self.region(region)?;
                    validate_dist(dist)?;
                }
            }
        }
        Ok(cur)
    }

    /// Apply `f` to every [`OpSpec::VarWork`] in `ops`, descending into
    /// guard branches — generation bakes a work table for each one, so
    /// validation must see them all.
    fn for_each_var_work<'o>(
        ops: &'o [OpSpec],
        f: &mut impl FnMut(&'o str, &'o Distribution) -> Result<()>,
    ) -> Result<()> {
        for op in ops {
            match op {
                OpSpec::VarWork { region, dist } => f(region, dist)?,
                OpSpec::Guard {
                    then_ops, else_ops, ..
                } => {
                    Self::for_each_var_work(then_ops, f)?;
                    Self::for_each_var_work(else_ops, f)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The distinct distribution kinds used by this scenario's
    /// `var_work` ops — top-level and nest phases alike, descending
    /// into guard branches — in first-use order. Tooling (`helix
    /// list`, explore reports) uses this to summarize a scenario's
    /// iteration-shape space at a glance.
    pub fn dist_kinds(&self) -> Vec<&'static str> {
        let mut kinds: Vec<&'static str> = Vec::new();
        let nest_phases = self.nests.iter().flat_map(|n| n.phases.iter());
        for phase in self.phases.iter().chain(nest_phases) {
            if let PhaseSpec::HotLoop(hl) = phase {
                let mut visit = |_: &str, dist: &Distribution| -> Result<()> {
                    let kind = dist.kind_name();
                    if !kinds.contains(&kind) {
                        kinds.push(kind);
                    }
                    Ok(())
                };
                Self::for_each_var_work(&hl.ops, &mut visit)
                    .expect("dist_kinds visitor never fails");
            }
        }
        kinds
    }

    /// A single-nest "view" of one nest: the shared regions plus the
    /// nest's private regions, with the nest's phases promoted to the
    /// top level. Validation and generation both reuse the single-nest
    /// machinery through this view, so nest phases behave exactly like
    /// classic phases with a restricted region scope.
    pub(crate) fn nest_view(&self, nest: &NestSpec) -> ScenarioSpec {
        let mut view = self.clone();
        view.regions.extend(nest.regions.iter().cloned());
        view.phases = nest.phases.clone();
        view.nests = Vec::new();
        view
    }

    fn validate_nests(&self) -> Result<()> {
        if !self.phases.is_empty() {
            return Err(SpecError::new(format!(
                "{}: a scenario uses either top-level phases or nests, not both",
                self.name
            )));
        }
        // Region names must be unique scenario-wide (shared + every
        // nest) so generation's flat region-id space is unambiguous.
        let mut seen: Vec<&str> = self.regions.iter().map(|r| r.name.as_str()).collect();
        for (i, nest) in self.nests.iter().enumerate() {
            if nest.name.is_empty() {
                return Err(SpecError::new(format!(
                    "{}: nest #{i} has no name",
                    self.name
                )));
            }
            if self.nests[..i].iter().any(|o| o.name == nest.name) {
                return Err(SpecError::new(format!(
                    "{}: duplicate nest '{}'",
                    self.name, nest.name
                )));
            }
            for n in self.scaled_ns() {
                check_param0(
                    nest.glue.eval(n),
                    &format!("{}: nest '{}' glue (at n={n})", self.name, nest.name),
                )?;
            }
            for r in &nest.regions {
                if seen.contains(&r.name.as_str()) {
                    return Err(SpecError::new(format!(
                        "{}: nest '{}': region '{}' shadows another region",
                        self.name, nest.name, r.name
                    )));
                }
                seen.push(r.name.as_str());
            }
            // Carried state lives in *shared* regions: exports are read
            // by later glue, imports are written before the nest runs.
            for (role, region) in [("import", &nest.import), ("export", &nest.export)] {
                if let Some(name) = region {
                    let shared = self.regions.iter().find(|r| r.name == *name);
                    match shared {
                        None => {
                            return Err(SpecError::new(format!(
                                "{}: nest '{}': {role} region '{name}' must be a shared \
                                 (top-level) region",
                                self.name, nest.name
                            )));
                        }
                        Some(r) if r.elem != ElemTy::I64 => {
                            return Err(SpecError::new(format!(
                                "{}: nest '{}': {role} region '{name}' must be i64",
                                self.name, nest.name
                            )));
                        }
                        Some(_) => {}
                    }
                }
            }
            if i == 0 && nest.import.is_some() && nest.export == nest.import {
                return Err(SpecError::new(format!(
                    "{}: nest '{}': first nest cannot import its own export",
                    self.name, nest.name
                )));
            }
            // The nest's phases validate through the single-nest path,
            // scoped to shared + own regions.
            let view = self.nest_view(nest);
            if view.phases.is_empty() {
                return Err(SpecError::new(format!(
                    "{}: nest '{}' has no phases",
                    self.name, nest.name
                )));
            }
            for phase in &view.phases {
                view.validate_phase(phase)
                    .map_err(|e| SpecError::new(format!("nest '{}': {}", nest.name, e.message)))?;
            }
        }
        Ok(())
    }

    /// Check internal consistency: region references resolve, masks fit
    /// their tables, ops have the data they need. Runs at both scales so
    /// a spec that only breaks under `--full` still fails fast.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(SpecError::new("scenario name must not be empty"));
        }
        check_param(self.base_n, "base_n")?;
        let all_regions = self
            .regions
            .iter()
            .chain(self.nests.iter().flat_map(|nest| nest.regions.iter()));
        for r in all_regions {
            for n in self.scaled_ns() {
                check_param(
                    r.size.eval(n),
                    &format!("{}: region '{}' size (at n={n})", self.name, r.name),
                )?;
            }
        }
        for (i, r) in self.regions.iter().enumerate() {
            if self.regions[..i].iter().any(|o| o.name == r.name) {
                return Err(SpecError::new(format!(
                    "{}: duplicate region '{}'",
                    self.name, r.name
                )));
            }
        }
        if !self.nests.is_empty() {
            self.validate_nests()?;
        } else {
            if self.phases.is_empty() {
                return Err(SpecError::new(format!("{}: no phases", self.name)));
            }
            for phase in &self.phases {
                self.validate_phase(phase)?;
            }
        }
        if !(1..=4096).contains(&self.run.cores) || self.run.fuel == 0 {
            return Err(SpecError::new(format!(
                "{}: run config needs cores in 1..=4096 and fuel > 0",
                self.name
            )));
        }
        for &cores in &self.run.sweep_cores {
            if !(1..=4096).contains(&cores) {
                return Err(SpecError::new(format!(
                    "{}: sweep_cores entries must be in 1..=4096, got {cores}",
                    self.name
                )));
            }
        }
        if self.run.machines.is_empty() {
            return Err(SpecError::new(format!("{}: no machines to run", self.name)));
        }
        Ok(())
    }

    fn validate_phase(&self, phase: &PhaseSpec) -> Result<()> {
        let check_count = |count: &CountExpr, what: &str| -> Result<()> {
            for n in self.scaled_ns() {
                if count.eval(n) < 1 {
                    return Err(SpecError::new(format!(
                        "{}: {what} count non-positive at n={n}",
                        self.name
                    )));
                }
            }
            Ok(())
        };
        // A region must hold `count` indexed words at both scales.
        let check_fits = |region: &str, count: &CountExpr| -> Result<()> {
            let r = self.region(region)?;
            for n in self.scaled_ns() {
                if count.eval(n) > r.size.eval(n) {
                    return Err(SpecError::new(format!(
                        "{}: region '{region}' too small for {} accesses at n={n}",
                        self.name,
                        count.eval(n)
                    )));
                }
            }
            Ok(())
        };
        match phase {
            PhaseSpec::Fill { region, count, .. } => {
                check_count(count, "fill")?;
                check_fits(region, count)
            }
            PhaseSpec::Doall {
                input,
                output,
                count,
                work,
            } => {
                check_count(count, "doall")?;
                check_fits(input, count)?;
                check_fits(output, count)?;
                check_param(*work, "doall work")?;
                Ok(())
            }
            PhaseSpec::HotLoop(hl) => {
                check_count(&hl.trips, "hot loop")?;
                if let Some(input) = &hl.input {
                    check_fits(input, &hl.trips)?;
                }
                if let Some(carry) = &hl.carry {
                    self.region(&carry.out)?;
                }
                let has_carry = hl.carry.is_some();
                self.check_ops(&hl.ops, has_carry, hl.input.is_some())?;
                // Distribution tables are indexed by the loop counter;
                // guard branches bake tables too, so descend into them.
                Self::for_each_var_work(&hl.ops, &mut |region, _| check_fits(region, &hl.trips))?;
                Ok(())
            }
            PhaseSpec::ArcRelax {
                tail,
                head,
                cost,
                pot,
                out,
                trips,
                nodes,
                chain,
            } => {
                check_count(trips, "arc_relax")?;
                for r in [tail, head, cost] {
                    check_fits(r, trips)?;
                }
                self.check_pow2(pot)?;
                self.check_indexable(pot, nodes - 1)?;
                self.region(out)?;
                if *nodes < 2 {
                    return Err(SpecError::new("arc_relax needs nodes >= 2"));
                }
                check_param(*chain, "arc_relax chain")?;
                Ok(())
            }
            PhaseSpec::Anneal {
                cells,
                table,
                out,
                outer,
                inner,
                stride,
                slot_mask,
                chain,
                table_mask,
            } => {
                check_count(outer, "anneal outer")?;
                self.check_indexable(cells, *slot_mask)?;
                self.check_indexable(table, *table_mask)?;
                self.region(out)?;
                check_param(*inner, "anneal inner")?;
                check_param(*stride, "anneal stride")?;
                check_param(*chain, "anneal chain")?;
                Ok(())
            }
            PhaseSpec::FpElements {
                disp,
                vel,
                elements,
                trip,
            } => {
                check_count(elements, "fp_elements")?;
                let fixed_trip = CountExpr::fixed(*trip);
                check_fits(disp, &fixed_trip)?;
                check_fits(vel, &fixed_trip)?;
                if *trip < 1 {
                    return Err(SpecError::new("fp_elements trip must be >= 1"));
                }
                Ok(())
            }
            PhaseSpec::FpNormalize {
                layer,
                pre,
                out,
                count,
                mask,
            } => {
                check_count(count, "fp_normalize")?;
                check_fits(layer, count)?;
                check_fits(pre, count)?;
                self.region(out)?;
                if *mask < 0 {
                    return Err(SpecError::new("fp_normalize mask must be >= 0"));
                }
                Ok(())
            }
            PhaseSpec::FpPairForce {
                atoms,
                forces,
                count,
                chain,
            } => {
                check_count(count, "fp_pair_force")?;
                // The coordinate init loop stores atoms[0..2*count], and
                // the pair index reads atoms[j + 1 word] for j up to
                // 2*(count - 1).
                let doubled = CountExpr {
                    per_n: 2 * count.per_n,
                    plus: 2 * count.plus,
                };
                check_fits(atoms, &doubled)?;
                check_fits(forces, count)?;
                check_param(*chain, "fp_pair_force chain")?;
                Ok(())
            }
            PhaseSpec::FpSpan {
                frame,
                zbuf,
                count,
                heavy_mask,
                heavy_chain,
            } => {
                check_count(count, "fp_span")?;
                check_fits(frame, count)?;
                check_fits(zbuf, count)?;
                check_param(*heavy_mask, "fp_span heavy_mask")?;
                check_param(*heavy_chain, "fp_span heavy_chain")?;
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// TOML serialization
// ---------------------------------------------------------------------

fn dist_to_toml(d: &Distribution) -> Value {
    let mut t = Table::new();
    match *d {
        Distribution::Fixed { value } => {
            t.set("kind", Value::Str("fixed".into()));
            t.set("value", Value::Int(value));
        }
        Distribution::Uniform { lo, hi } => {
            t.set("kind", Value::Str("uniform".into()));
            t.set("lo", Value::Int(lo));
            t.set("hi", Value::Int(hi));
        }
        Distribution::Bursty {
            short,
            long,
            period,
        } => {
            t.set("kind", Value::Str("bursty".into()));
            t.set("short", Value::Int(short));
            t.set("long", Value::Int(long));
            t.set("period", Value::Int(period));
        }
        Distribution::Geometric { mean, cap } => {
            t.set("kind", Value::Str("geometric".into()));
            t.set("mean", Value::Int(mean));
            t.set("cap", Value::Int(cap));
        }
        Distribution::Zipf { max } => {
            t.set("kind", Value::Str("zipf".into()));
            t.set("max", Value::Int(max));
        }
        Distribution::PhaseChange { low, high, period } => {
            t.set("kind", Value::Str("phase_change".into()));
            t.set("low", Value::Int(low));
            t.set("high", Value::Int(high));
            t.set("period", Value::Int(period));
        }
        Distribution::OpenLoop { mean, service } => {
            t.set("kind", Value::Str("open_loop".into()));
            t.set("mean", Value::Int(mean));
            t.set("service", Value::Int(service));
        }
        Distribution::ClosedLoop {
            users,
            think,
            service,
        } => {
            t.set("kind", Value::Str("closed_loop".into()));
            t.set("users", Value::Int(users));
            t.set("think", Value::Int(think));
            t.set("service", Value::Int(service));
        }
        Distribution::TailBurst { base, max, period } => {
            t.set("kind", Value::Str("tail_burst".into()));
            t.set("base", Value::Int(base));
            t.set("max", Value::Int(max));
            t.set("period", Value::Int(period));
        }
    }
    Value::Table(t)
}

fn op_to_toml(op: &OpSpec) -> Value {
    let mut t = Table::new();
    match op {
        OpSpec::Work { insts } => {
            t.set("kind", Value::Str("work".into()));
            t.set("insts", Value::Int(*insts));
        }
        OpSpec::Stream { region, stride } => {
            t.set("kind", Value::Str("stream".into()));
            t.set("region", Value::Str(region.clone()));
            t.set("stride", Value::Int(*stride));
        }
        OpSpec::Table {
            region,
            shift,
            mask,
            op,
            value,
        } => {
            t.set("kind", Value::Str("table".into()));
            t.set("region", Value::Str(region.clone()));
            t.set("shift", Value::Int(*shift));
            t.set("mask", Value::Int(*mask));
            t.set(
                "op",
                Value::Str(match op {
                    UpdateOp::Add => "add".into(),
                    UpdateOp::Xor => "xor".into(),
                }),
            );
            t.set(
                "value",
                Value::Str(match value {
                    UpdateValue::One => "one".into(),
                    UpdateValue::Cur => "cur".into(),
                }),
            );
        }
        OpSpec::ChainHead { region, mask } => {
            t.set("kind", Value::Str("chain_head".into()));
            t.set("region", Value::Str(region.clone()));
            t.set("mask", Value::Int(*mask));
        }
        OpSpec::Guard {
            mask,
            then_ops,
            else_ops,
        } => {
            t.set("kind", Value::Str("guard".into()));
            t.set("mask", Value::Int(*mask));
            t.set(
                "then",
                Value::Array(then_ops.iter().map(op_to_toml).collect()),
            );
            t.set(
                "else",
                Value::Array(else_ops.iter().map(op_to_toml).collect()),
            );
        }
        OpSpec::Carry { op, operand } => {
            t.set("kind", Value::Str("carry".into()));
            t.set(
                "op",
                Value::Str(
                    match op {
                        CarryOp::Add => "add",
                        CarryOp::Xor => "xor",
                        CarryOp::Mul => "mul",
                        CarryOp::Shl => "shl",
                        CarryOp::Min => "min",
                    }
                    .into(),
                ),
            );
            t.set(
                "value",
                match operand {
                    CarryOperand::Cur => Value::Str("cur".into()),
                    CarryOperand::Imm(v) => Value::Int(*v),
                },
            );
        }
        OpSpec::Bump { region } => {
            t.set("kind", Value::Str("bump".into()));
            t.set("region", Value::Str(region.clone()));
        }
        OpSpec::ScaleStore { region, factor } => {
            t.set("kind", Value::Str("scale_store".into()));
            t.set("region", Value::Str(region.clone()));
            t.set("factor", Value::Int(*factor));
        }
        OpSpec::Store { region } => {
            t.set("kind", Value::Str("store".into()));
            t.set("region", Value::Str(region.clone()));
        }
        OpSpec::PtrChase { region, hops, mask } => {
            t.set("kind", Value::Str("ptr_chase".into()));
            t.set("region", Value::Str(region.clone()));
            t.set("hops", Value::Int(*hops));
            t.set("mask", Value::Int(*mask));
        }
        OpSpec::VarWork { region, dist } => {
            t.set("kind", Value::Str("var_work".into()));
            t.set("region", Value::Str(region.clone()));
            t.set("dist", dist_to_toml(dist));
        }
    }
    Value::Table(t)
}

fn phase_to_toml(phase: &PhaseSpec) -> Value {
    let mut t = Table::new();
    match phase {
        PhaseSpec::Fill {
            region,
            count,
            seed,
        } => {
            t.set("kind", Value::Str("fill".into()));
            t.set("region", Value::Str(region.clone()));
            t.set("count", Value::Str(count.render()));
            t.set("seed", Value::Int(*seed));
        }
        PhaseSpec::Doall {
            input,
            output,
            count,
            work,
        } => {
            t.set("kind", Value::Str("doall".into()));
            t.set("input", Value::Str(input.clone()));
            t.set("output", Value::Str(output.clone()));
            t.set("count", Value::Str(count.render()));
            t.set("work", Value::Int(*work));
        }
        PhaseSpec::HotLoop(hl) => {
            t.set("kind", Value::Str("hot_loop".into()));
            t.set("trips", Value::Str(hl.trips.render()));
            if let Some(input) = &hl.input {
                t.set("input", Value::Str(input.clone()));
            }
            if let Some(carry) = &hl.carry {
                let mut c = Table::new();
                c.set("init", Value::Int(carry.init));
                c.set("out", Value::Str(carry.out.clone()));
                t.set("carry", Value::Table(c));
            }
            t.set("ops", Value::Array(hl.ops.iter().map(op_to_toml).collect()));
        }
        PhaseSpec::ArcRelax {
            tail,
            head,
            cost,
            pot,
            out,
            trips,
            nodes,
            chain,
        } => {
            t.set("kind", Value::Str("arc_relax".into()));
            t.set("tail", Value::Str(tail.clone()));
            t.set("head", Value::Str(head.clone()));
            t.set("cost", Value::Str(cost.clone()));
            t.set("pot", Value::Str(pot.clone()));
            t.set("out", Value::Str(out.clone()));
            t.set("trips", Value::Str(trips.render()));
            t.set("nodes", Value::Int(*nodes));
            t.set("chain", Value::Int(*chain));
        }
        PhaseSpec::Anneal {
            cells,
            table,
            out,
            outer,
            inner,
            stride,
            slot_mask,
            chain,
            table_mask,
        } => {
            t.set("kind", Value::Str("anneal".into()));
            t.set("cells", Value::Str(cells.clone()));
            t.set("table", Value::Str(table.clone()));
            t.set("out", Value::Str(out.clone()));
            t.set("outer", Value::Str(outer.render()));
            t.set("inner", Value::Int(*inner));
            t.set("stride", Value::Int(*stride));
            t.set("slot_mask", Value::Int(*slot_mask));
            t.set("chain", Value::Int(*chain));
            t.set("table_mask", Value::Int(*table_mask));
        }
        PhaseSpec::FpElements {
            disp,
            vel,
            elements,
            trip,
        } => {
            t.set("kind", Value::Str("fp_elements".into()));
            t.set("disp", Value::Str(disp.clone()));
            t.set("vel", Value::Str(vel.clone()));
            t.set("elements", Value::Str(elements.render()));
            t.set("trip", Value::Int(*trip));
        }
        PhaseSpec::FpNormalize {
            layer,
            pre,
            out,
            count,
            mask,
        } => {
            t.set("kind", Value::Str("fp_normalize".into()));
            t.set("layer", Value::Str(layer.clone()));
            t.set("pre", Value::Str(pre.clone()));
            t.set("out", Value::Str(out.clone()));
            t.set("count", Value::Str(count.render()));
            t.set("mask", Value::Int(*mask));
        }
        PhaseSpec::FpPairForce {
            atoms,
            forces,
            count,
            chain,
        } => {
            t.set("kind", Value::Str("fp_pair_force".into()));
            t.set("atoms", Value::Str(atoms.clone()));
            t.set("forces", Value::Str(forces.clone()));
            t.set("count", Value::Str(count.render()));
            t.set("chain", Value::Int(*chain));
        }
        PhaseSpec::FpSpan {
            frame,
            zbuf,
            count,
            heavy_mask,
            heavy_chain,
        } => {
            t.set("kind", Value::Str("fp_span".into()));
            t.set("frame", Value::Str(frame.clone()));
            t.set("zbuf", Value::Str(zbuf.clone()));
            t.set("count", Value::Str(count.render()));
            t.set("heavy_mask", Value::Int(*heavy_mask));
            t.set("heavy_chain", Value::Int(*heavy_chain));
        }
    }
    Value::Table(t)
}

fn region_to_toml(r: &RegionSpec) -> Value {
    let mut t = Table::new();
    t.set("name", Value::Str(r.name.clone()));
    t.set("size", Value::Str(r.size.render()));
    t.set(
        "elem",
        Value::Str(match r.elem {
            ElemTy::I64 => "i64".into(),
            ElemTy::F64 => "f64".into(),
        }),
    );
    Value::Table(t)
}

fn nest_to_toml(nest: &NestSpec) -> Value {
    let mut t = Table::new();
    t.set("name", Value::Str(nest.name.clone()));
    t.set("glue", Value::Str(nest.glue.render()));
    if let Some(import) = &nest.import {
        t.set("import", Value::Str(import.clone()));
    }
    if let Some(export) = &nest.export {
        t.set("export", Value::Str(export.clone()));
    }
    if !nest.regions.is_empty() {
        t.set(
            "region",
            Value::Array(nest.regions.iter().map(region_to_toml).collect()),
        );
    }
    t.set(
        "phase",
        Value::Array(nest.phases.iter().map(phase_to_toml).collect()),
    );
    Value::Table(t)
}

impl ScenarioSpec {
    /// Serialize to the TOML subset of [`crate::toml`].
    pub fn to_toml(&self) -> String {
        let mut root = Table::new();
        root.set("name", Value::Str(self.name.clone()));
        root.set("description", Value::Str(self.description.clone()));
        root.set("kind", Value::Str(self.kind.render().into()));
        root.set("base_n", Value::Int(self.base_n));
        root.set("seed", Value::Int(self.seed));
        root.set(
            "region",
            Value::Array(self.regions.iter().map(region_to_toml).collect()),
        );
        if !self.phases.is_empty() {
            root.set(
                "phase",
                Value::Array(self.phases.iter().map(phase_to_toml).collect()),
            );
        }
        if !self.nests.is_empty() {
            root.set(
                "nest",
                Value::Array(self.nests.iter().map(nest_to_toml).collect()),
            );
        }
        let mut run = Table::new();
        run.set("cores", Value::Int(self.run.cores));
        run.set("compiler", Value::Str(self.run.compiler.render().into()));
        run.set(
            "machines",
            Value::Array(
                self.run
                    .machines
                    .iter()
                    .map(|m| Value::Str(m.render().into()))
                    .collect(),
            ),
        );
        run.set("fuel", Value::Int(self.run.fuel as i64));
        if !self.run.sweep_cores.is_empty() {
            run.set(
                "sweep_cores",
                Value::Array(
                    self.run
                        .sweep_cores
                        .iter()
                        .map(|&c| Value::Int(c))
                        .collect(),
                ),
            );
        }
        root.set("run", Value::Table(run));
        toml::write(&root)
    }

    /// Parse a spec from TOML text. The result is validated.
    ///
    /// # Examples
    ///
    /// ```
    /// use helix_workloads::ScenarioSpec;
    ///
    /// let spec = ScenarioSpec::from_toml(r#"
    /// name = "doc.demo"
    /// kind = "int"
    /// base_n = 64
    /// seed = 1
    ///
    /// [[region]]
    /// name = "data"
    /// size = "n+1"
    /// elem = "i64"
    ///
    /// [[phase]]
    /// kind = "fill"
    /// region = "data"
    /// count = "n"
    /// seed = 1
    /// "#)?;
    /// assert_eq!(spec.name, "doc.demo");
    /// assert!(spec.nests.is_empty()); // classic single-pipeline form
    /// # Ok::<(), helix_workloads::SpecError>(())
    /// ```
    pub fn from_toml(text: &str) -> Result<ScenarioSpec> {
        let root = toml::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        let spec = spec_from_table(&root)?;
        spec.validate()?;
        Ok(spec)
    }
}

fn req<'t>(t: &'t Table, key: &str, what: &str) -> Result<&'t Value> {
    t.get(key)
        .ok_or_else(|| SpecError::new(format!("{what}: missing key '{key}'")))
}

fn req_str(t: &Table, key: &str, what: &str) -> Result<String> {
    req(t, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| SpecError::new(format!("{what}: '{key}' must be a string")))
}

fn req_int(t: &Table, key: &str, what: &str) -> Result<i64> {
    req(t, key, what)?
        .as_int()
        .ok_or_else(|| SpecError::new(format!("{what}: '{key}' must be an integer")))
}

fn req_count(t: &Table, key: &str, what: &str) -> Result<CountExpr> {
    CountExpr::parse(&req_str(t, key, what)?)
}

fn dist_from_toml(v: &Value, what: &str) -> Result<Distribution> {
    let t = v
        .as_table()
        .ok_or_else(|| SpecError::new(format!("{what}: 'dist' must be a table")))?;
    let kind = req_str(t, "kind", what)?;
    match kind.as_str() {
        "fixed" => Ok(Distribution::Fixed {
            value: req_int(t, "value", what)?,
        }),
        "uniform" => Ok(Distribution::Uniform {
            lo: req_int(t, "lo", what)?,
            hi: req_int(t, "hi", what)?,
        }),
        "bursty" => Ok(Distribution::Bursty {
            short: req_int(t, "short", what)?,
            long: req_int(t, "long", what)?,
            period: req_int(t, "period", what)?,
        }),
        "geometric" => Ok(Distribution::Geometric {
            mean: req_int(t, "mean", what)?,
            cap: req_int(t, "cap", what)?,
        }),
        "zipf" => Ok(Distribution::Zipf {
            max: req_int(t, "max", what)?,
        }),
        "phase_change" => Ok(Distribution::PhaseChange {
            low: req_int(t, "low", what)?,
            high: req_int(t, "high", what)?,
            period: req_int(t, "period", what)?,
        }),
        "open_loop" => Ok(Distribution::OpenLoop {
            mean: req_int(t, "mean", what)?,
            service: req_int(t, "service", what)?,
        }),
        "closed_loop" => Ok(Distribution::ClosedLoop {
            users: req_int(t, "users", what)?,
            think: req_int(t, "think", what)?,
            service: req_int(t, "service", what)?,
        }),
        "tail_burst" => Ok(Distribution::TailBurst {
            base: req_int(t, "base", what)?,
            max: req_int(t, "max", what)?,
            period: req_int(t, "period", what)?,
        }),
        other => Err(SpecError::new(format!(
            "{what}: unknown distribution '{other}'"
        ))),
    }
}

fn ops_from_toml(v: &Value, what: &str) -> Result<Vec<OpSpec>> {
    v.as_array()
        .ok_or_else(|| SpecError::new(format!("{what}: ops must be an array")))?
        .iter()
        .map(|item| op_from_toml(item, what))
        .collect()
}

fn op_from_toml(v: &Value, what: &str) -> Result<OpSpec> {
    let t = v
        .as_table()
        .ok_or_else(|| SpecError::new(format!("{what}: each op must be a table")))?;
    let kind = req_str(t, "kind", what)?;
    let what = &format!("{what}.{kind}");
    match kind.as_str() {
        "work" => Ok(OpSpec::Work {
            insts: req_int(t, "insts", what)?,
        }),
        "stream" => Ok(OpSpec::Stream {
            region: req_str(t, "region", what)?,
            stride: req_int(t, "stride", what)?,
        }),
        "table" => Ok(OpSpec::Table {
            region: req_str(t, "region", what)?,
            shift: req_int(t, "shift", what)?,
            mask: req_int(t, "mask", what)?,
            op: match req_str(t, "op", what)?.as_str() {
                "add" => UpdateOp::Add,
                "xor" => UpdateOp::Xor,
                other => {
                    return Err(SpecError::new(format!("{what}: unknown op '{other}'")));
                }
            },
            value: match req_str(t, "value", what)?.as_str() {
                "one" => UpdateValue::One,
                "cur" => UpdateValue::Cur,
                other => {
                    return Err(SpecError::new(format!("{what}: unknown value '{other}'")));
                }
            },
        }),
        "chain_head" => Ok(OpSpec::ChainHead {
            region: req_str(t, "region", what)?,
            mask: req_int(t, "mask", what)?,
        }),
        "guard" => Ok(OpSpec::Guard {
            mask: req_int(t, "mask", what)?,
            then_ops: ops_from_toml(req(t, "then", what)?, what)?,
            else_ops: ops_from_toml(req(t, "else", what)?, what)?,
        }),
        "carry" => Ok(OpSpec::Carry {
            op: match req_str(t, "op", what)?.as_str() {
                "add" => CarryOp::Add,
                "xor" => CarryOp::Xor,
                "mul" => CarryOp::Mul,
                "shl" => CarryOp::Shl,
                "min" => CarryOp::Min,
                other => {
                    return Err(SpecError::new(format!(
                        "{what}: unknown carry op '{other}'"
                    )));
                }
            },
            operand: match req(t, "value", what)? {
                Value::Str(s) if s == "cur" => CarryOperand::Cur,
                Value::Int(v) => CarryOperand::Imm(*v),
                other => {
                    return Err(SpecError::new(format!(
                        "{what}: carry value must be \"cur\" or an integer, got {other:?}"
                    )));
                }
            },
        }),
        "bump" => Ok(OpSpec::Bump {
            region: req_str(t, "region", what)?,
        }),
        "scale_store" => Ok(OpSpec::ScaleStore {
            region: req_str(t, "region", what)?,
            factor: req_int(t, "factor", what)?,
        }),
        "store" => Ok(OpSpec::Store {
            region: req_str(t, "region", what)?,
        }),
        "ptr_chase" => Ok(OpSpec::PtrChase {
            region: req_str(t, "region", what)?,
            hops: req_int(t, "hops", what)?,
            mask: req_int(t, "mask", what)?,
        }),
        "var_work" => Ok(OpSpec::VarWork {
            region: req_str(t, "region", what)?,
            dist: dist_from_toml(req(t, "dist", what)?, what)?,
        }),
        other => Err(SpecError::new(format!("unknown op kind '{other}'"))),
    }
}

fn phase_from_toml(v: &Value, index: usize) -> Result<PhaseSpec> {
    let what = &format!("phase #{index}");
    let t = v
        .as_table()
        .ok_or_else(|| SpecError::new(format!("{what}: must be a table")))?;
    let kind = req_str(t, "kind", what)?;
    match kind.as_str() {
        "fill" => Ok(PhaseSpec::Fill {
            region: req_str(t, "region", what)?,
            count: req_count(t, "count", what)?,
            seed: req_int(t, "seed", what)?,
        }),
        "doall" => Ok(PhaseSpec::Doall {
            input: req_str(t, "input", what)?,
            output: req_str(t, "output", what)?,
            count: req_count(t, "count", what)?,
            work: req_int(t, "work", what)?,
        }),
        "hot_loop" => {
            let carry = match t.get("carry") {
                None => None,
                Some(v) => {
                    let c = v
                        .as_table()
                        .ok_or_else(|| SpecError::new(format!("{what}: carry must be a table")))?;
                    Some(CarrySpec {
                        init: req_int(c, "init", what)?,
                        out: req_str(c, "out", what)?,
                    })
                }
            };
            Ok(PhaseSpec::HotLoop(HotLoopSpec {
                trips: req_count(t, "trips", what)?,
                input: match t.get("input") {
                    None => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| {
                                SpecError::new(format!("{what}: input must be a string"))
                            })?
                            .to_string(),
                    ),
                },
                carry,
                ops: ops_from_toml(req(t, "ops", what)?, what)?,
            }))
        }
        "arc_relax" => Ok(PhaseSpec::ArcRelax {
            tail: req_str(t, "tail", what)?,
            head: req_str(t, "head", what)?,
            cost: req_str(t, "cost", what)?,
            pot: req_str(t, "pot", what)?,
            out: req_str(t, "out", what)?,
            trips: req_count(t, "trips", what)?,
            nodes: req_int(t, "nodes", what)?,
            chain: req_int(t, "chain", what)?,
        }),
        "anneal" => Ok(PhaseSpec::Anneal {
            cells: req_str(t, "cells", what)?,
            table: req_str(t, "table", what)?,
            out: req_str(t, "out", what)?,
            outer: req_count(t, "outer", what)?,
            inner: req_int(t, "inner", what)?,
            stride: req_int(t, "stride", what)?,
            slot_mask: req_int(t, "slot_mask", what)?,
            chain: req_int(t, "chain", what)?,
            table_mask: req_int(t, "table_mask", what)?,
        }),
        "fp_elements" => Ok(PhaseSpec::FpElements {
            disp: req_str(t, "disp", what)?,
            vel: req_str(t, "vel", what)?,
            elements: req_count(t, "elements", what)?,
            trip: req_int(t, "trip", what)?,
        }),
        "fp_normalize" => Ok(PhaseSpec::FpNormalize {
            layer: req_str(t, "layer", what)?,
            pre: req_str(t, "pre", what)?,
            out: req_str(t, "out", what)?,
            count: req_count(t, "count", what)?,
            mask: req_int(t, "mask", what)?,
        }),
        "fp_pair_force" => Ok(PhaseSpec::FpPairForce {
            atoms: req_str(t, "atoms", what)?,
            forces: req_str(t, "forces", what)?,
            count: req_count(t, "count", what)?,
            chain: req_int(t, "chain", what)?,
        }),
        "fp_span" => Ok(PhaseSpec::FpSpan {
            frame: req_str(t, "frame", what)?,
            zbuf: req_str(t, "zbuf", what)?,
            count: req_count(t, "count", what)?,
            heavy_mask: req_int(t, "heavy_mask", what)?,
            heavy_chain: req_int(t, "heavy_chain", what)?,
        }),
        other => Err(SpecError::new(format!("unknown phase kind '{other}'"))),
    }
}

fn regions_from_toml(t: &Table, key: &str) -> Result<Vec<RegionSpec>> {
    t.get(key)
        .and_then(|v| v.as_array())
        .unwrap_or(&[])
        .iter()
        .map(|v| -> Result<RegionSpec> {
            let t = v
                .as_table()
                .ok_or_else(|| SpecError::new("each region must be a table"))?;
            Ok(RegionSpec {
                name: req_str(t, "name", "region")?,
                size: req_count(t, "size", "region")?,
                elem: match req_str(t, "elem", "region")?.as_str() {
                    "i64" => ElemTy::I64,
                    "f64" => ElemTy::F64,
                    other => {
                        return Err(SpecError::new(format!("unknown elem type '{other}'")));
                    }
                },
            })
        })
        .collect::<Result<Vec<_>>>()
}

fn phases_from_toml(t: &Table, key: &str) -> Result<Vec<PhaseSpec>> {
    t.get(key)
        .and_then(|v| v.as_array())
        .unwrap_or(&[])
        .iter()
        .enumerate()
        .map(|(i, v)| phase_from_toml(v, i))
        .collect::<Result<Vec<_>>>()
}

fn opt_str(t: &Table, key: &str, what: &str) -> Result<Option<String>> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| SpecError::new(format!("{what}: '{key}' must be a string"))),
    }
}

fn nest_from_toml(v: &Value, index: usize) -> Result<NestSpec> {
    let what = &format!("nest #{index}");
    let t = v
        .as_table()
        .ok_or_else(|| SpecError::new(format!("{what}: must be a table")))?;
    Ok(NestSpec {
        name: req_str(t, "name", what)?,
        glue: match t.get("glue") {
            None => CountExpr::fixed(0),
            Some(v) => CountExpr::parse(
                v.as_str()
                    .ok_or_else(|| SpecError::new(format!("{what}: glue must be a string")))?,
            )?,
        },
        import: opt_str(t, "import", what)?,
        export: opt_str(t, "export", what)?,
        regions: regions_from_toml(t, "region")?,
        phases: phases_from_toml(t, "phase")?,
    })
}

fn spec_from_table(root: &Table) -> Result<ScenarioSpec> {
    let what = "scenario";
    let name = req_str(root, "name", what)?;
    let kind = match req_str(root, "kind", what)?.as_str() {
        "int" => Kind::Int,
        "fp" => Kind::Fp,
        other => return Err(SpecError::new(format!("unknown kind '{other}'"))),
    };
    let regions = regions_from_toml(root, "region")?;
    let phases = phases_from_toml(root, "phase")?;
    let nests = root
        .get("nest")
        .and_then(|v| v.as_array())
        .unwrap_or(&[])
        .iter()
        .enumerate()
        .map(|(i, v)| nest_from_toml(v, i))
        .collect::<Result<Vec<_>>>()?;
    let run = match root.get("run") {
        None => RunSpec::default(),
        Some(v) => {
            let t = v
                .as_table()
                .ok_or_else(|| SpecError::new("'run' must be a table"))?;
            let defaults = RunSpec::default();
            RunSpec {
                cores: t
                    .get("cores")
                    .map(|v| v.as_int().ok_or_else(|| SpecError::new("cores: integer")))
                    .transpose()?
                    .unwrap_or(defaults.cores),
                compiler: t
                    .get("compiler")
                    .map(|v| {
                        v.as_str()
                            .ok_or_else(|| SpecError::new("compiler: string"))
                            .and_then(CompilerGen::parse)
                    })
                    .transpose()?
                    .unwrap_or(defaults.compiler),
                machines: t
                    .get("machines")
                    .map(|v| -> Result<Vec<MachineKind>> {
                        v.as_array()
                            .ok_or_else(|| SpecError::new("machines: array"))?
                            .iter()
                            .map(|m| {
                                m.as_str()
                                    .ok_or_else(|| SpecError::new("machines: strings"))
                                    .and_then(MachineKind::parse)
                            })
                            .collect()
                    })
                    .transpose()?
                    .unwrap_or(defaults.machines),
                fuel: t
                    .get("fuel")
                    .map(|v| {
                        v.as_int()
                            .filter(|f| *f >= 1)
                            .ok_or_else(|| SpecError::new("fuel must be a positive integer"))
                    })
                    .transpose()?
                    .map(|f| f as u64)
                    .unwrap_or(defaults.fuel),
                sweep_cores: t
                    .get("sweep_cores")
                    .map(|v| -> Result<Vec<i64>> {
                        v.as_array()
                            .ok_or_else(|| SpecError::new("sweep_cores: array"))?
                            .iter()
                            .map(|c| {
                                c.as_int()
                                    .ok_or_else(|| SpecError::new("sweep_cores: integers"))
                            })
                            .collect()
                    })
                    .transpose()?
                    .unwrap_or_default(),
            }
        }
    };
    Ok(ScenarioSpec {
        name,
        description: root
            .get("description")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string(),
        kind,
        base_n: req_int(root, "base_n", what)?,
        seed: req_int(root, "seed", what)?,
        regions,
        phases,
        nests,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_builtin::{builtin_spec, builtin_specs};

    #[test]
    fn count_expr_round_trip() {
        for expr in [
            CountExpr::n(),
            CountExpr::n_plus(1),
            CountExpr::n_plus(-1),
            CountExpr::fixed(1024),
            CountExpr { per_n: 2, plus: 8 },
            CountExpr { per_n: 3, plus: -4 },
        ] {
            assert_eq!(CountExpr::parse(&expr.render()).unwrap(), expr);
        }
        assert_eq!(
            CountExpr::parse("2*n+8").unwrap(),
            CountExpr { per_n: 2, plus: 8 }
        );
        assert!(CountExpr::parse("banana").is_err());
    }

    #[test]
    fn count_expr_eval() {
        assert_eq!(CountExpr::n_plus(1).eval(100), 101);
        assert_eq!(CountExpr::fixed(256).eval(100), 256);
        assert_eq!(CountExpr { per_n: 2, plus: 8 }.eval(5), 18);
    }

    #[test]
    fn builtin_specs_validate_and_round_trip() {
        let specs = builtin_specs();
        assert!(
            specs.len() >= 13,
            "expected >= 13 builtins, got {}",
            specs.len()
        );
        for spec in specs {
            spec.validate().expect(&spec.name);
            let text = spec.to_toml();
            let parsed = ScenarioSpec::from_toml(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(parsed, spec, "round trip failed for {}", spec.name);
        }
    }

    #[test]
    fn builtin_lookup() {
        assert!(builtin_spec("175.vpr").is_some());
        assert!(builtin_spec("nope").is_none());
    }

    #[test]
    fn validation_rejects_broken_specs() {
        let mut spec = builtin_spec("175.vpr").unwrap();
        spec.phases.push(PhaseSpec::Fill {
            region: "no_such_region".into(),
            count: CountExpr::n(),
            seed: 1,
        });
        assert!(spec.validate().is_err());

        let mut spec = builtin_spec("256.bzip2").unwrap();
        // Mask exceeding the 256-word freq table.
        if let PhaseSpec::HotLoop(hl) = &mut spec.phases[2] {
            hl.ops[1] = OpSpec::Table {
                region: "freq".into(),
                shift: 0,
                mask: 4095,
                op: UpdateOp::Add,
                value: UpdateValue::One,
            };
        } else {
            panic!("expected hot loop");
        }
        assert!(spec.validate().is_err());

        let mut spec = builtin_spec("164.gzip").unwrap();
        // Carry op without a carry declaration.
        if let PhaseSpec::HotLoop(hl) = &mut spec.phases[2] {
            hl.carry = None;
        }
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_mask_exceeding_scaled_region() {
        // A mask can outgrow a region even when the region scales with
        // n: "sorted" holds n+1 = 101 words at base_n = 100, far fewer
        // than mask 255 can index.
        let mut spec = builtin_spec("256.bzip2").unwrap();
        spec.base_n = 100;
        if let PhaseSpec::HotLoop(hl) = &mut spec.phases[2] {
            if let OpSpec::Table { region, .. } = &mut hl.ops[1] {
                *region = "sorted".into();
            } else {
                panic!("expected table op");
            }
        } else {
            panic!("expected hot loop");
        }
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("mask 255"), "{err}");
    }

    #[test]
    fn validation_descends_into_guarded_var_work() {
        // A var_work hidden in a guard branch still bakes a full-length
        // work table, so an undersized region must be rejected.
        let mut spec = builtin_spec("910.bursty").unwrap();
        spec.regions.push(RegionSpec {
            name: "tiny".into(),
            size: CountExpr::fixed(4),
            elem: ElemTy::I64,
        });
        if let PhaseSpec::HotLoop(hl) = &mut spec.phases[2] {
            hl.ops.push(OpSpec::Guard {
                mask: 1,
                then_ops: vec![OpSpec::VarWork {
                    region: "tiny".into(),
                    dist: Distribution::Fixed { value: 3 },
                }],
                else_ops: vec![],
            });
        } else {
            panic!("expected hot loop");
        }
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("tiny"), "{err}");
    }

    #[test]
    fn validation_rejects_extreme_distribution_parameters() {
        let mut spec = builtin_spec("910.bursty").unwrap();
        if let PhaseSpec::HotLoop(hl) = &mut spec.phases[2] {
            hl.ops[0] = OpSpec::VarWork {
                region: "lengths".into(),
                dist: Distribution::Uniform {
                    lo: i64::MIN,
                    hi: 0,
                },
            };
        } else {
            panic!("expected hot loop");
        }
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_undersized_pair_force_atoms() {
        // fp_pair_force touches atoms[0..2*count]; a region holding only
        // count words must fail validation, not the simulator.
        let mut spec = builtin_spec("188.ammp").unwrap();
        spec.regions[0].size = CountExpr::n();
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("atoms"), "{err}");
    }

    #[test]
    fn validation_rejects_negative_masks_and_shifts() {
        let break_table = |f: &mut dyn FnMut(&mut OpSpec)| {
            let mut spec = builtin_spec("256.bzip2").unwrap();
            if let PhaseSpec::HotLoop(hl) = &mut spec.phases[2] {
                f(&mut hl.ops[1]);
            } else {
                panic!("expected hot loop");
            }
            spec
        };
        let neg_mask = break_table(&mut |op| {
            if let OpSpec::Table { mask, .. } = op {
                *mask = -1;
            }
        });
        assert!(neg_mask.validate().unwrap_err().message.contains("mask"));
        let neg_shift = break_table(&mut |op| {
            if let OpSpec::Table { shift, .. } = op {
                *shift = -10;
            }
        });
        assert!(neg_shift.validate().unwrap_err().message.contains("shift"));
    }

    #[test]
    fn parse_rejects_non_positive_fuel() {
        let spec = builtin_spec("164.gzip").unwrap();
        let text = spec.to_toml().replace("fuel = 134217728", "fuel = -1");
        let err = ScenarioSpec::from_toml(&text).unwrap_err();
        assert!(err.message.contains("fuel"), "{err}");
    }

    #[test]
    fn parse_reports_unknown_kinds() {
        let bad =
            "name = \"x\"\nkind = \"int\"\nbase_n = 10\nseed = 1\n[[phase]]\nkind = \"warp\"\n";
        let err = ScenarioSpec::from_toml(bad).unwrap_err();
        assert!(err.message.contains("warp"), "{err}");
    }

    #[test]
    fn multi_nest_builtins_validate_and_round_trip() {
        for name in ["950.twonest", "960.cov_hi", "970.pipeline"] {
            let spec = builtin_spec(name).unwrap_or_else(|| panic!("no builtin {name}"));
            assert!(spec.nests.len() >= 2, "{name} should be multi-nest");
            assert!(spec.phases.is_empty(), "{name}: nests exclude phases");
            spec.validate().expect(name);
            let text = spec.to_toml();
            let parsed =
                ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            assert_eq!(parsed, spec, "round trip failed for {name}");
        }
    }

    #[test]
    fn validation_rejects_phases_alongside_nests() {
        let mut spec = builtin_spec("950.twonest").unwrap();
        spec.phases.push(PhaseSpec::Fill {
            region: "src".into(),
            count: CountExpr::n(),
            seed: 1,
        });
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("not both"), "{err}");
    }

    #[test]
    fn validation_rejects_nest_region_shadowing() {
        let mut spec = builtin_spec("950.twonest").unwrap();
        // "src" is a shared region; a nest-private region of the same
        // name would make the flat region-id space ambiguous.
        spec.nests[1].regions.push(RegionSpec {
            name: "src".into(),
            size: CountExpr::fixed(8),
            elem: ElemTy::I64,
        });
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("shadows"), "{err}");
    }

    #[test]
    fn validation_scopes_private_regions_to_their_nest() {
        let mut spec = builtin_spec("950.twonest").unwrap();
        // "links" is private to the "scan" nest; the "build" nest must
        // not be able to reference it.
        spec.nests[0].phases.push(PhaseSpec::Fill {
            region: "links".into(),
            count: CountExpr::fixed(8),
            seed: 1,
        });
        let err = spec.validate().unwrap_err();
        assert!(
            err.message.contains("links") && err.message.contains("build"),
            "{err}"
        );
    }

    #[test]
    fn validation_rejects_carried_state_in_private_or_float_regions() {
        let mut spec = builtin_spec("950.twonest").unwrap();
        // Export through a nest-private region: the next nest's glue
        // could never see it.
        spec.nests[0].export = Some("stage".into());
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("shared"), "{err}");

        let mut spec = builtin_spec("950.twonest").unwrap();
        spec.regions.push(RegionSpec {
            name: "fbox".into(),
            size: CountExpr::fixed(8),
            elem: ElemTy::F64,
        });
        spec.nests[1].import = Some("fbox".into());
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("i64"), "{err}");
    }

    #[test]
    fn validation_rejects_negative_glue() {
        let mut spec = builtin_spec("950.twonest").unwrap();
        spec.nests[1].glue = CountExpr::fixed(-5);
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("glue"), "{err}");
    }

    #[test]
    fn validation_rejects_duplicate_and_unnamed_nests() {
        let mut spec = builtin_spec("950.twonest").unwrap();
        spec.nests[1].name = spec.nests[0].name.clone();
        assert!(spec.validate().is_err());

        let mut spec = builtin_spec("950.twonest").unwrap();
        spec.nests[0].name = String::new();
        assert!(spec.validate().is_err());
    }
}
