//! # helix-rc
//!
//! The HELIX-RC reproduction facade: everything needed to go from a
//! sequential [`helix_ir::Program`] to paper-style results.
//!
//! * [`experiment`] — runners for every measurement in the paper's
//!   evaluation: compiler generations (Figs. 1/7), the decoupling
//!   lattice (Fig. 8), coupled-vs-ring execution (Fig. 9), core-type and
//!   ring-parameter sweeps (Figs. 10/11), the overhead taxonomy
//!   (Fig. 12), iteration-length and sharing profiles (Fig. 4);
//! * [`analysis_figs`] — the compiler-side experiments: analysis
//!   accuracy (Fig. 2), predictable-variable communication reduction
//!   (Fig. 3), abstract TLP under splitting (§6.2);
//! * [`related`] — the Table 2 design-space matrix;
//! * [`report`] — plain-text figure rendering;
//! * [`scenario`] — end-to-end execution of declarative
//!   [`ScenarioSpec`](helix_workloads::ScenarioSpec)s (generate →
//!   compile → simulate) with JSON reporting, backing the `helix` CLI;
//! * [`campaign`] — cross-scenario sweep campaigns: one
//!   [`CampaignSpec`](helix_workloads::CampaignSpec) config fans out
//!   over a scenario set × machine/compiler grid, runs the cells in
//!   parallel, and aggregates a deterministic report (the `helix
//!   campaign` subcommand and the spec-driven figures);
//! * [`resilient`] — the fault-tolerant execution layer under the
//!   campaign runner: per-cell isolation with classified failures,
//!   retry/budget policies, a content-addressed on-disk journal for
//!   checkpoint/resume, and a deterministic chaos harness;
//! * [`api`] — the unified request/response surface ([`Request`] in,
//!   [`Response`] out via [`execute`]) that the CLI subcommands, the
//!   service, and the submit client all share, plus its NDJSON wire
//!   codec and structured [`HelixError`] codes;
//! * [`service`] — `helix serve`: a resident campaign service on a
//!   Unix-domain socket with a bounded worker pool, single-flight
//!   dedup, and journal-hit answers for repeat submissions;
//! * [`explore`] — `helix explore`: seed-deterministic scenario
//!   fuzzing through a battery of differential oracles (engine
//!   agreement, fast-forward exactness, lane invariance, coverage
//!   accounting, Amdahl bounds) with frontier search and auto-shrunk,
//!   runnable-TOML findings.
//!
//! # Examples
//!
//! ```no_run
//! use helix_rc::experiment::{compiler_generations, ExperimentOptions};
//! use helix_workloads::{by_name, Scale};
//!
//! let vpr = by_name("175.vpr", Scale::Test).unwrap();
//! let row = compiler_generations(&vpr, 16, &ExperimentOptions::default())?;
//! println!("{}: HCCv2 {:.2}x -> HELIX-RC {:.2}x (paper: {:.1}x)",
//!          row.name, row.v2, row.helix_rc, row.paper_helix);
//! # Ok::<(), Box<dyn std::error::Error + Send + Sync>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis_figs;
pub mod api;
pub mod batch;
pub mod campaign;
pub mod error;
pub mod experiment;
pub mod explore;
pub mod related;
pub mod report;
pub mod resilient;
pub mod scenario;
pub mod service;

pub use api::{execute, CampaignSource, Request, Response, RunOptions, ServiceStatus, SpecSource};
pub use batch::SimCache;
pub use campaign::{
    load_campaign, run_campaign, run_campaign_file, run_campaign_stats, run_campaign_with,
    CampaignReport, CampaignRow, CampaignRunOptions, CampaignRunStats,
};
pub use error::{ErrorKind, HelixError};
pub use experiment::{
    compiler_generations, core_type_sweep, coupled_vs_ring, decoupling_lattice, iteration_lengths,
    overhead_breakdown, sharing_profile, sweep_core_count, sweep_ring, ExperimentOptions,
    LatticePoint,
};
pub use explore::{run_explore, shrink_spec, ExploreOptions, ExploreReport};
pub use resilient::{CellFailure, FailureKind, FaultPlan, Journal};
pub use scenario::{run_scenario, RunOverrides, ScenarioReport};
pub use service::{serve, submit, ServeOptions};

// Re-export the full stack so downstream users need one dependency.
pub use helix_analysis as analysis;
pub use helix_hcc as hcc;
pub use helix_ir as ir;
pub use helix_ring_cache as ring_cache;
pub use helix_sim as sim;
pub use helix_workloads as workloads;
