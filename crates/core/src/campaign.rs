//! Campaign execution: run a declarative [`CampaignSpec`] — one config
//! file naming a set of scenario specs plus a machine/compiler grid —
//! and aggregate every cell into a single [`CampaignReport`].
//!
//! Each grid cell (scenario × experiment × core count) lowers onto the
//! corresponding [`crate::experiment`] function, cells execute in
//! parallel via rayon, and aggregation is stable-ordered: cells are
//! enumerated deterministically up front and results are collected
//! positionally, so the report never depends on thread timing. Nothing
//! wall-clock-dependent enters the report, which makes it byte-identical
//! across runs of the same campaign + seed — the property the
//! per-scenario CI speedup gate and the determinism tests rely on.

use crate::batch::SimCache;
use crate::experiment::{
    compiler_generations, coupled_vs_ring, decoupling_lattice, link_latency_settings,
    node_memory_settings, overhead_breakdown, signal_bandwidth_settings, sweep_core_count,
    sweep_ring, ExpError, ExperimentOptions, FUEL,
};
use crate::report::json_escape as esc;
use crate::resilient::{
    fnv1a, run_cell_resilient, CellFailure, FailureKind, Fault, FaultPlan, Journal, FNV_OFFSET,
};
use crate::scenario::nest_rows;
use helix_hcc::{compile, HccConfig};
use helix_sim::EngineSel;
use helix_workloads::spec::{CompilerGen, CountExpr};
use helix_workloads::{
    geomean, workload_from_spec, CampaignExperiment, CampaignSpec, ScenarioSpec, Workload,
};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One aggregated grid cell: a scenario measured by one experiment at
/// one core count. Headline fields are `Some` when the experiment
/// produces them; `points` always carries the experiment's full set of
/// labelled measurements in a stable order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Scenario name.
    pub scenario: String,
    /// `"int"` or `"fp"`.
    pub kind: String,
    /// Experiment name (see [`CampaignExperiment::render`]).
    pub experiment: String,
    /// Core count of this cell (the largest swept count for
    /// `core_sweep`).
    pub cores: usize,
    /// HELIX-RC speedup over the sequential baseline.
    pub helix_speedup: Option<f64>,
    /// Published speedup, when the paper measured this scenario.
    pub paper_speedup: Option<f64>,
    /// Sequential baseline cycles.
    pub seq_cycles: Option<u64>,
    /// HELIX-RC run cycles.
    pub helix_cycles: Option<u64>,
    /// Fraction of ring-run busy cycles spent communicating.
    pub comm_frac: Option<f64>,
    /// Fig. 12 overhead fractions.
    pub overheads: Option<[f64; 7]>,
    /// All labelled measurements of the experiment, in its native order.
    pub points: Vec<(String, f64)>,
}

/// One nest's contribution to a [`DerivedRow`].
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedNestRow {
    /// Nest name.
    pub name: String,
    /// In-context fraction of sequential cycles spent in the nest.
    pub weight: f64,
    /// In-context fraction spent in the glue preceding the nest.
    pub glue_weight: f64,
    /// Compiler coverage inside the isolated nest.
    pub coverage: f64,
    /// Fraction of the *whole program's* profiled execution covered by
    /// parallelized loops inside this nest's block boundary (mapped via
    /// the generation-time [`NestBoundary`](helix_workloads::NestBoundary)).
    pub program_coverage: f64,
    /// Parallelized loops inside the nest.
    pub plans: usize,
    /// Isolated-nest HELIX-RC speedup.
    pub speedup: f64,
}

/// Cross-scenario *derived* metrics for one scenario: how the measured
/// HELIX-RC speedup relates to the coverage the compiler achieved —
/// the speedup-vs-coverage axis the paper's Table 1 / Fig. 7 pairing
/// implies — plus the per-nest breakdown for multi-nest scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedRow {
    /// Scenario name.
    pub scenario: String,
    /// `"int"` or `"fp"`.
    pub kind: String,
    /// Core count the derivation ran at.
    pub cores: usize,
    /// Parallel-loop coverage achieved by HCCv3 on the whole program.
    pub coverage: f64,
    /// Measured HELIX-RC speedup (from the `generations` row).
    pub speedup: f64,
    /// Amdahl-style coverage-limited bound at this core count:
    /// `1 / ((1 - c) + c / cores)`.
    pub amdahl_bound: f64,
    /// Fraction of the bound the measured speedup attains.
    pub bound_frac: f64,
    /// Per-nest rows (empty for single-pipeline scenarios).
    pub nests: Vec<DerivedNestRow>,
}

/// The aggregated result of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Campaign description.
    pub description: String,
    /// `"Test"` or `"Full"`.
    pub scale: String,
    /// Seed offset the campaign applied to every scenario.
    pub seed: i64,
    /// Scenario names, sorted (the sweep's row universe).
    pub scenarios: Vec<String>,
    /// One row per grid cell, grouped by experiment then cores then
    /// scenario.
    pub rows: Vec<CampaignRow>,
    /// Derived speedup-vs-coverage metrics, one row per scenario
    /// (present when the campaign ran the `generations` experiment).
    pub derived: Vec<DerivedRow>,
    /// Cells that failed (panic / error / budget), in deterministic
    /// cell-enumeration order. A failed cell contributes no row but
    /// never aborts the run.
    pub failures: Vec<CellFailure>,
}

impl CampaignReport {
    /// Per-scenario headline HELIX-RC speedups, from the first
    /// `generations` row of each scenario. This is the series the CI
    /// per-scenario regression gate compares against its committed
    /// baseline.
    pub fn helix_speedups(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for row in &self.rows {
            if row.experiment == "generations" && !out.iter().any(|(n, _)| *n == row.scenario) {
                if let Some(s) = row.helix_speedup {
                    out.push((row.scenario.clone(), s));
                }
            }
        }
        out
    }

    /// Render as a deterministic JSON document (no wall-clock fields:
    /// two runs of the same campaign + seed are byte-identical).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"harness\": \"campaign\",");
        let _ = writeln!(
            out,
            "  \"schema_version\": {},",
            crate::report::SCHEMA_VERSION
        );
        let _ = writeln!(out, "  \"name\": \"{}\",", esc(&self.name));
        let _ = writeln!(out, "  \"description\": \"{}\",", esc(&self.description));
        let _ = writeln!(out, "  \"scale\": \"{}\",", esc(&self.scale));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let names: Vec<String> = self
            .scenarios
            .iter()
            .map(|n| format!("\"{}\"", esc(n)))
            .collect();
        let _ = writeln!(out, "  \"scenarios\": [{}],", names.join(", "));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"scenario\": \"{}\", \"kind\": \"{}\", \"experiment\": \"{}\", \
                 \"cores\": {}",
                esc(&row.scenario),
                esc(&row.kind),
                esc(&row.experiment),
                row.cores
            );
            if let Some(s) = row.helix_speedup {
                let _ = write!(out, ", \"helix_speedup\": {s:.4}");
            }
            if let Some(s) = row.paper_speedup {
                let _ = write!(out, ", \"paper_speedup\": {s:.4}");
            }
            if let Some(c) = row.seq_cycles {
                let _ = write!(out, ", \"seq_cycles\": {c}");
            }
            if let Some(c) = row.helix_cycles {
                let _ = write!(out, ", \"helix_cycles\": {c}");
            }
            if let Some(f) = row.comm_frac {
                let _ = write!(out, ", \"comm_frac\": {f:.4}");
            }
            if let Some(o) = row.overheads {
                let cells: Vec<String> = o.iter().map(|v| format!("{v:.4}")).collect();
                let _ = write!(out, ", \"overheads\": [{}]", cells.join(", "));
            }
            let points: Vec<String> = row
                .points
                .iter()
                .map(|(label, value)| {
                    format!("{{\"label\": \"{}\", \"value\": {value:.4}}}", esc(label))
                })
                .collect();
            let _ = write!(out, ", \"points\": [{}]}}", points.join(", "));
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        if !self.derived.is_empty() {
            out.push_str(",\n  \"derived\": [\n");
            for (i, d) in self.derived.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"scenario\": \"{}\", \"kind\": \"{}\", \"cores\": {}, \
                     \"coverage\": {:.4}, \"speedup\": {:.4}, \"amdahl_bound\": {:.4}, \
                     \"bound_frac\": {:.4}",
                    esc(&d.scenario),
                    esc(&d.kind),
                    d.cores,
                    d.coverage,
                    d.speedup,
                    d.amdahl_bound,
                    d.bound_frac
                );
                if !d.nests.is_empty() {
                    let nests: Vec<String> = d
                        .nests
                        .iter()
                        .map(|nest| {
                            format!(
                                "{{\"name\": \"{}\", \"weight\": {:.4}, \"glue_weight\": {:.4}, \
                                 \"coverage\": {:.4}, \"program_coverage\": {:.4}, \
                                 \"plans\": {}, \"speedup\": {:.4}}}",
                                esc(&nest.name),
                                nest.weight,
                                nest.glue_weight,
                                nest.coverage,
                                nest.program_coverage,
                                nest.plans,
                                nest.speedup
                            )
                        })
                        .collect();
                    let _ = write!(out, ", \"nests\": [{}]", nests.join(", "));
                }
                out.push('}');
                out.push_str(if i + 1 < self.derived.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ]");
        }
        if !self.failures.is_empty() {
            out.push_str(",\n  \"failures\": [\n");
            for (i, f) in self.failures.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"scenario\": \"{}\", \"experiment\": \"{}\", \"cores\": {}, \
                     \"kind\": \"{}\", \"retries\": {}, \"message\": \"{}\"}}",
                    esc(&f.scenario),
                    esc(&f.experiment),
                    f.cores,
                    f.kind.render(),
                    f.retries,
                    esc(&f.message)
                );
                out.push_str(if i + 1 < self.failures.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Render paper-style text tables: one table per (experiment, core
    /// count) group, with INT/FP geomean rows where speedups are
    /// comparable across scenarios.
    pub fn table(&self) -> String {
        use crate::report::{table, x};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign '{}' — {} scenario(s), scale {}{}",
            self.name,
            self.scenarios.len(),
            self.scale,
            if self.seed != 0 {
                format!(", seed offset {}", self.seed)
            } else {
                String::new()
            }
        );
        let mut groups: Vec<(String, usize)> = Vec::new();
        for row in &self.rows {
            let key = (row.experiment.clone(), row.cores);
            if !groups.contains(&key) {
                groups.push(key);
            }
        }
        for (experiment, cores) in groups {
            let rows: Vec<&CampaignRow> = self
                .rows
                .iter()
                .filter(|r| r.experiment == experiment && r.cores == cores)
                .collect();
            let _ = writeln!(out, "\n== {experiment} @ {cores} cores ==");
            let labels: Vec<String> = rows
                .first()
                .map(|r| r.points.iter().map(|(l, _)| l.clone()).collect())
                .unwrap_or_default();
            let with_paper = rows.iter().any(|r| r.paper_speedup.is_some());
            let mut headers: Vec<&str> = vec!["benchmark"];
            headers.extend(labels.iter().map(String::as_str));
            if with_paper {
                headers.push("paper HELIX-RC");
            }
            let fmt_cell = |label: &str, v: f64| -> String {
                // Percent-style labels render as percentages, speedups
                // as "N.NNx".
                if label.contains('%') || label.contains("frac") {
                    format!("{v:.1}")
                } else {
                    x(v)
                }
            };
            let mut body: Vec<Vec<String>> = Vec::new();
            for r in &rows {
                let mut cells = vec![r.scenario.clone()];
                for (label, v) in &r.points {
                    cells.push(fmt_cell(label, *v));
                }
                if with_paper {
                    cells.push(r.paper_speedup.map(x).unwrap_or_else(|| "-".into()));
                }
                body.push(cells);
            }
            // Geomean rows make sense when every point is a speedup.
            let all_speedups = !labels.is_empty()
                && labels
                    .iter()
                    .all(|l| !l.contains('%') && !l.contains("frac"));
            if all_speedups {
                for (kind, tag) in [("int", "INT geomean"), ("fp", "FP geomean")] {
                    let of_kind: Vec<&&CampaignRow> =
                        rows.iter().filter(|r| r.kind == kind).collect();
                    if of_kind.is_empty() {
                        continue;
                    }
                    let mut cells = vec![tag.to_string()];
                    for col in 0..labels.len() {
                        cells.push(x(geomean(of_kind.iter().map(|r| r.points[col].1))));
                    }
                    if with_paper {
                        let published: Vec<f64> =
                            of_kind.iter().filter_map(|r| r.paper_speedup).collect();
                        cells.push(if published.is_empty() {
                            "-".into()
                        } else {
                            x(geomean(published))
                        });
                    }
                    body.push(cells);
                }
            }
            out.push_str(&table(&headers, &body));
        }
        out.push_str(&self.derived_tables());
        if !self.failures.is_empty() {
            let _ = writeln!(out, "\n== failures ({}) ==", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(out, "  - {f}");
            }
        }
        out
    }

    /// Render the derived speedup-vs-coverage table and, when the
    /// campaign contains multi-nest scenarios, the per-nest breakdown.
    fn derived_tables(&self) -> String {
        use crate::report::{table, x};
        if self.derived.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let cores = self.derived[0].cores;
        let _ = writeln!(out, "\n== speedup vs coverage @ {cores} cores ==");
        let pct = |v: f64| format!("{:.1}", 100.0 * v);
        let body: Vec<Vec<String>> = self
            .derived
            .iter()
            .map(|d| {
                vec![
                    d.scenario.clone(),
                    pct(d.coverage),
                    x(d.speedup),
                    x(d.amdahl_bound),
                    pct(d.bound_frac),
                ]
            })
            .collect();
        out.push_str(&table(
            &[
                "benchmark",
                "coverage %",
                "HELIX-RC",
                "Amdahl bound",
                "% of bound",
            ],
            &body,
        ));
        let with_nests: Vec<&DerivedRow> = self
            .derived
            .iter()
            .filter(|d| !d.nests.is_empty())
            .collect();
        if !with_nests.is_empty() {
            let _ = writeln!(out, "\n== per-nest breakdown @ {cores} cores ==");
            let mut body: Vec<Vec<String>> = Vec::new();
            for d in with_nests {
                for nest in &d.nests {
                    body.push(vec![
                        d.scenario.clone(),
                        nest.name.clone(),
                        pct(nest.weight),
                        pct(nest.glue_weight),
                        pct(nest.coverage),
                        pct(nest.program_coverage),
                        nest.plans.to_string(),
                        x(nest.speedup),
                    ]);
                }
            }
            out.push_str(&table(
                &[
                    "benchmark",
                    "nest",
                    "weight %",
                    "glue %",
                    "nest cov %",
                    "prog cov %",
                    "plans",
                    "speedup",
                ],
                &body,
            ));
        }
        out
    }
}

/// Apply the grid's `[grid.nest_override]` when present: every scenario
/// declaring the named nest is replaced by one variant per glue value —
/// name-suffixed `name+glue=N`, with that nest's glue count pinned to
/// the constant — so one campaign run sweeps the nest's sequential
/// fraction. Scenarios without the nest pass through unchanged; at
/// least one scenario must have it, else the sweep would silently
/// measure nothing.
fn expand_nest_override(
    spec: &CampaignSpec,
    reseeded: Vec<ScenarioSpec>,
) -> Result<Vec<ScenarioSpec>, ExpError> {
    let Some(ov) = &spec.grid.nest_override else {
        return Ok(reseeded);
    };
    let mut out: Vec<ScenarioSpec> = Vec::with_capacity(reseeded.len() * ov.glue.len());
    let mut matched = false;
    for s in reseeded {
        let Some(nest_ix) = s.nests.iter().position(|n| n.name == ov.nest) else {
            out.push(s);
            continue;
        };
        matched = true;
        for &glue in &ov.glue {
            let mut variant = s.clone();
            variant.name = format!("{}+glue={glue}", s.name);
            variant.nests[nest_ix].glue = CountExpr::fixed(glue);
            out.push(variant);
        }
    }
    if !matched {
        return Err(ExpError::new(
            crate::error::ErrorKind::Spec,
            format!(
                "campaign '{}': grid.nest_override names nest '{}' but no scenario declares it",
                spec.name, ov.nest
            ),
        ));
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

/// One deterministic grid cell, enumerated before execution.
#[derive(Debug, Clone, Copy)]
struct Cell {
    scenario_ix: usize,
    experiment: CampaignExperiment,
    cores: usize,
}

fn paper_speedup(w: &Workload) -> Option<f64> {
    (w.paper.helix_speedup > 0.0).then_some(w.paper.helix_speedup)
}

fn blank_row(w: &Workload, experiment: CampaignExperiment, cores: usize) -> CampaignRow {
    CampaignRow {
        scenario: w.name.clone(),
        kind: w.kind.render().into(),
        experiment: experiment.render().into(),
        cores,
        helix_speedup: None,
        paper_speedup: None,
        seq_cycles: None,
        helix_cycles: None,
        comm_frac: None,
        overheads: None,
        points: Vec::new(),
    }
}

fn run_cell(
    cell: Cell,
    sweep_cores: &[usize],
    w: &Workload,
    opts: &ExperimentOptions,
) -> Result<CampaignRow, ExpError> {
    let mut row = blank_row(w, cell.experiment, cell.cores);
    match cell.experiment {
        CampaignExperiment::Generations => {
            let r = compiler_generations(w, cell.cores, opts)?;
            row.points = vec![
                ("HCCv1".into(), r.v1),
                ("HCCv2".into(), r.v2),
                ("HELIX-RC".into(), r.helix_rc),
            ];
            row.helix_speedup = Some(r.helix_rc);
            row.paper_speedup = paper_speedup(w);
            row.seq_cycles = Some(r.seq_cycles);
            row.helix_cycles = Some(r.helix_cycles);
        }
        CampaignExperiment::CoupledVsRing => {
            let r = coupled_vs_ring(w, cell.cores, opts)?;
            row.points = vec![
                ("C % of seq".into(), r.conventional_pct),
                ("R % of seq".into(), r.ring_pct),
                ("C comm frac %".into(), 100.0 * r.conventional_comm_frac),
                ("R comm frac %".into(), 100.0 * r.ring_comm_frac),
            ];
            row.comm_frac = Some(r.ring_comm_frac);
        }
        CampaignExperiment::Overheads => {
            let r = overhead_breakdown(w, cell.cores, opts)?;
            row.points = vec![("speedup".into(), r.speedup)];
            row.helix_speedup = Some(r.speedup);
            row.paper_speedup = paper_speedup(w);
            row.overheads = Some(r.measured);
        }
        CampaignExperiment::Lattice => {
            let pts = decoupling_lattice(w, cell.cores, opts)?;
            row.helix_speedup = pts.last().map(|(_, s)| *s);
            row.points = pts
                .into_iter()
                .map(|(p, s)| (p.label().to_string(), s))
                .collect();
        }
        CampaignExperiment::CoreSweep => {
            row.points = sweep_core_count(w, sweep_cores, opts)?;
            row.helix_speedup = row.points.last().map(|(_, s)| *s);
        }
        CampaignExperiment::RingLatency => {
            row.points = sweep_ring(w, cell.cores, &link_latency_settings(), opts)?;
        }
        CampaignExperiment::RingBandwidth => {
            row.points = sweep_ring(w, cell.cores, &signal_bandwidth_settings(), opts)?;
        }
        CampaignExperiment::RingMemory => {
            row.points = sweep_ring(w, cell.cores, &node_memory_settings(), opts)?;
        }
    }
    Ok(row)
}

/// Journal cell-file encoding of one [`CampaignRow`]. Floats are stored
/// as `f64::to_bits` hex so a journaled row decodes to the *exact* value
/// that was measured — the property that makes a resumed report
/// byte-identical to an uninterrupted one.
fn encode_row(row: &CampaignRow) -> String {
    let mut out = String::from("helix-cell v1\n");
    let _ = writeln!(out, "scenario\t{}", row.scenario);
    let _ = writeln!(out, "kind\t{}", row.kind);
    let _ = writeln!(out, "experiment\t{}", row.experiment);
    let _ = writeln!(out, "cores\t{}", row.cores);
    if let Some(v) = row.helix_speedup {
        let _ = writeln!(out, "helix_speedup\t{:016x}", v.to_bits());
    }
    if let Some(v) = row.paper_speedup {
        let _ = writeln!(out, "paper_speedup\t{:016x}", v.to_bits());
    }
    if let Some(v) = row.seq_cycles {
        let _ = writeln!(out, "seq_cycles\t{v}");
    }
    if let Some(v) = row.helix_cycles {
        let _ = writeln!(out, "helix_cycles\t{v}");
    }
    if let Some(v) = row.comm_frac {
        let _ = writeln!(out, "comm_frac\t{:016x}", v.to_bits());
    }
    if let Some(o) = row.overheads {
        let cells: Vec<String> = o.iter().map(|v| format!("{:016x}", v.to_bits())).collect();
        let _ = writeln!(out, "overheads\t{}", cells.join(" "));
    }
    for (label, value) in &row.points {
        // Label last: labels may contain anything but newlines/tabs.
        let _ = writeln!(out, "point\t{:016x}\t{label}", value.to_bits());
    }
    out
}

/// Decode a journaled cell file. `None` on any malformed input — the
/// caller treats that as a cache miss and re-runs the cell.
fn decode_row(text: &str) -> Option<CampaignRow> {
    let mut lines = text.lines();
    if lines.next()? != "helix-cell v1" {
        return None;
    }
    let f64_of = |s: &str| u64::from_str_radix(s, 16).ok().map(f64::from_bits);
    let mut row = CampaignRow {
        scenario: String::new(),
        kind: String::new(),
        experiment: String::new(),
        cores: 0,
        helix_speedup: None,
        paper_speedup: None,
        seq_cycles: None,
        helix_cycles: None,
        comm_frac: None,
        overheads: None,
        points: Vec::new(),
    };
    for line in lines {
        let (key, rest) = line.split_once('\t')?;
        match key {
            "scenario" => row.scenario = rest.to_string(),
            "kind" => row.kind = rest.to_string(),
            "experiment" => row.experiment = rest.to_string(),
            "cores" => row.cores = rest.parse().ok()?,
            "helix_speedup" => row.helix_speedup = Some(f64_of(rest)?),
            "paper_speedup" => row.paper_speedup = Some(f64_of(rest)?),
            "seq_cycles" => row.seq_cycles = Some(rest.parse().ok()?),
            "helix_cycles" => row.helix_cycles = Some(rest.parse().ok()?),
            "comm_frac" => row.comm_frac = Some(f64_of(rest)?),
            "overheads" => {
                let vals: Vec<f64> = rest.split(' ').map_while(f64_of).collect();
                row.overheads = Some(<[f64; 7]>::try_from(vals).ok()?);
            }
            "point" => {
                let (bits, label) = rest.split_once('\t')?;
                row.points.push((label.to_string(), f64_of(bits)?));
            }
            _ => return None,
        }
    }
    (!row.scenario.is_empty() && !row.experiment.is_empty() && row.cores > 0).then_some(row)
}

/// Load a campaign file and every scenario spec it references. Errors
/// name the offending file — a campaign whose scenario set cannot be
/// resolved fails before any simulation starts.
pub fn load_campaign(path: &Path) -> Result<(CampaignSpec, Vec<ScenarioSpec>), ExpError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ExpError::io(format!("cannot read campaign '{}': {e}", path.display())))?;
    let spec = CampaignSpec::from_toml(&text)
        .map_err(|e| ExpError::from(e).with_file(path.display().to_string()))?;
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    let files = spec
        .resolve_scenarios(base)
        .map_err(|e| ExpError::from(e).with_file(path.display().to_string()))?;
    let mut scenarios = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| ExpError::io(format!("cannot read scenario '{}': {e}", file.display())))?;
        let scenario = ScenarioSpec::from_toml(&text)
            .map_err(|e| ExpError::from(e).with_file(file.display().to_string()))?;
        scenarios.push(scenario);
    }
    scenarios.sort_by(|a, b| a.name.cmp(&b.name));
    for pair in scenarios.windows(2) {
        if pair[0].name == pair[1].name {
            return Err(ExpError::new(
                crate::error::ErrorKind::Spec,
                format!("scenario '{}' is matched more than once", pair[0].name),
            )
            .with_file(path.display().to_string())
            .with_value(pair[0].name.clone()));
        }
    }
    Ok((spec, scenarios))
}

/// Execution-layer options for [`run_campaign_with`]: journaling,
/// resume, chaos injection, and lane-parallel batching. The default
/// (no journal, no resume, no faults, single-lane) reproduces the
/// plain in-memory behaviour of [`run_campaign`].
///
/// None of these options affect report *content* — a batched run is
/// byte-identical to a single-lane one (pinned by
/// `tests/lane_exactness.rs`); they only change how the work is
/// executed.
#[derive(Debug, Clone)]
pub struct CampaignRunOptions {
    /// Journal completed cells under this directory (one content-keyed
    /// file per cell; see [`Journal`]).
    pub journal: Option<PathBuf>,
    /// Reuse journaled cells instead of re-running them. Requires
    /// `journal`.
    pub resume: bool,
    /// Seeded chaos: inject faults into a deterministic subset of
    /// cells.
    pub faults: Option<FaultPlan>,
    /// Lane width for batched simulation. `<= 1` (the default) runs
    /// every cell standalone, exactly as before lanes existed. `> 1`
    /// shares one [`SimCache`] across each scenario's cells — compiles,
    /// decodes, and duplicated runs (sequential baselines above all)
    /// happen once — and steps up to this many simulations of a
    /// scenario in lockstep per [`helix_sim::SimSession`] batch.
    /// Fault-injected cells always run single-lane without the shared
    /// cache, preserving per-cell failure isolation.
    pub lanes: usize,
    /// Engine override for every cell. `None` picks
    /// [`EngineSel::Batched`] when `lanes > 1` and the decoded default
    /// otherwise; the bench harness pins [`EngineSel::Tree`] here to
    /// time the naive per-cell baseline.
    pub engine: Option<EngineSel>,
    /// Event-skipping fast-forward (on by default). The bench harness
    /// disables it to time the naive one-cycle-at-a-time loop as the
    /// pre-optimization "before"; reports stay byte-identical.
    pub fast_forward: bool,
}

impl Default for CampaignRunOptions {
    fn default() -> CampaignRunOptions {
        CampaignRunOptions {
            journal: None,
            resume: false,
            faults: None,
            lanes: 1,
            engine: None,
            fast_forward: true,
        }
    }
}

/// Execution counters of one campaign run: how many grid cells were
/// enumerated and how each was answered. Deliberately *not* part of
/// [`CampaignReport`] — hit counts depend on journal state, and the
/// report must stay byte-identical between a cold run and a fully
/// journal-answered one. The service carries these counters in its
/// response envelope instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignRunStats {
    /// Grid cells enumerated (scenario × experiment × cores).
    pub cells: usize,
    /// Grid cells answered from the journal without simulating.
    pub journal_hits: usize,
    /// Grid cells actually simulated.
    pub simulated: usize,
    /// Grid cells that failed (they are re-attempted on resume).
    pub failed: usize,
    /// Derived rows answered from the journal.
    pub derived_hits: usize,
    /// Derived rows computed (each re-simulates nest prefixes).
    pub derived_computed: usize,
}

impl CampaignRunStats {
    /// Whether the run touched the simulator at all — `false` means
    /// every cell *and* every derived row came out of the journal.
    pub fn fully_cached(&self) -> bool {
        self.simulated == 0 && self.derived_computed == 0 && self.failed == 0
    }
}

/// Run a campaign over already-loaded scenario specs: apply the
/// campaign's seed offset, lower every grid cell onto its experiment
/// function, execute the cells in parallel, and aggregate in a stable
/// order.
///
/// Legacy convenience: thin wrapper over the unified
/// [`api::execute`](crate::api::execute) path (equivalently
/// [`run_campaign_stats`] with default options). Prefer building an
/// [`api::Request`](crate::api::Request) in new code.
pub fn run_campaign(
    spec: &CampaignSpec,
    scenarios: &[ScenarioSpec],
) -> Result<CampaignReport, ExpError> {
    run_campaign_with(spec, scenarios, &CampaignRunOptions::default())
}

/// [`run_campaign`] under explicit [`CampaignRunOptions`].
///
/// Legacy convenience: discards the [`CampaignRunStats`] that
/// [`run_campaign_stats`] returns. Prefer the unified
/// [`api::execute`](crate::api::execute) path in new code.
pub fn run_campaign_with(
    spec: &CampaignSpec,
    scenarios: &[ScenarioSpec],
    options: &CampaignRunOptions,
) -> Result<CampaignReport, ExpError> {
    run_campaign_stats(spec, scenarios, options).map(|(report, _)| report)
}

/// The full campaign runner: [`run_campaign_with`] semantics plus
/// execution counters.
///
/// Every cell runs behind the resilient layer
/// ([`run_cell_resilient`]): panics are caught at the cell boundary,
/// failures are classified and (when transient) retried per the spec's
/// [`ResiliencePolicy`](helix_workloads::ResiliencePolicy), and a
/// failed cell becomes a [`CellFailure`] row instead of aborting the
/// run. With a journal, completed cells *and derived rows* are
/// persisted under their content digest; with `resume`, journaled
/// entries are loaded instead of re-run, so a crashed or interrupted
/// campaign continues where it stopped — and editing one scenario
/// re-runs only that scenario's cells. When every entry hits, the
/// returned [`CampaignRunStats::fully_cached`] is true and the run
/// never touched the simulator.
pub fn run_campaign_stats(
    spec: &CampaignSpec,
    scenarios: &[ScenarioSpec],
    options: &CampaignRunOptions,
) -> Result<(CampaignReport, CampaignRunStats), ExpError> {
    use crate::error::ErrorKind;
    spec.validate().map_err(ExpError::from)?;
    if scenarios.is_empty() {
        return Err(ExpError::new(
            ErrorKind::Spec,
            format!("campaign '{}': no scenarios to run", spec.name),
        ));
    }
    // Scenario order is by name regardless of how the caller loaded
    // them, so reports are comparable across directory layouts.
    let mut ordered: Vec<&ScenarioSpec> = scenarios.iter().collect();
    ordered.sort_by(|a, b| a.name.cmp(&b.name));
    let reseeded: Vec<ScenarioSpec> = ordered
        .iter()
        .map(|s| {
            let mut spec_ = (*s).clone();
            spec_.seed = spec_.seed.wrapping_add(spec.seed);
            spec_
        })
        .collect();
    let reseeded = expand_nest_override(spec, reseeded)?;

    let workloads: Vec<Workload> = reseeded
        .par_iter()
        .map(|s| workload_from_spec(s, spec.scale))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| {
            ExpError::new(
                crate::error::ErrorKind::Spec,
                format!("campaign '{}': {e}", spec.name),
            )
        })?;

    let grid_cores: Vec<usize> = spec.grid.cores.iter().map(|&c| c as usize).collect();
    // The core-count sweep has its own axis so `cores` can stay pinned
    // (e.g. the paper's 16) while the sweep covers 2..16.
    let sweep_cores: Vec<usize> = if spec.grid.sweep_cores.is_empty() {
        grid_cores.clone()
    } else {
        spec.grid.sweep_cores.iter().map(|&c| c as usize).collect()
    };
    let mut cells: Vec<Cell> = Vec::new();
    for &experiment in &spec.grid.experiments {
        if experiment == CampaignExperiment::CoreSweep {
            // The sweep consumes the whole core axis as one cell.
            let cores = *sweep_cores.iter().max().expect("validated non-empty cores");
            for scenario_ix in 0..workloads.len() {
                cells.push(Cell {
                    scenario_ix,
                    experiment,
                    cores,
                });
            }
        } else {
            for &cores in &grid_cores {
                for scenario_ix in 0..workloads.len() {
                    cells.push(Cell {
                        scenario_ix,
                        experiment,
                        cores,
                    });
                }
            }
        }
    }

    let journal = match &options.journal {
        Some(dir) => Some(Journal::open(dir)?),
        None => {
            if options.resume {
                return Err(ExpError::usage(format!(
                    "campaign '{}': --resume requires a journal",
                    spec.name
                )));
            }
            None
        }
    };
    // Effective per-cell cycle budget: the spec's cycle_budget when set,
    // else the experiment default. Part of each cell's digest — a budget
    // change must invalidate journaled results.
    let fuel = if spec.resilience.cycle_budget > 0 {
        spec.resilience.cycle_budget as u64
    } else {
        FUEL
    };

    // Stable per-cell identity, used both for chaos-fault assignment
    // and (hashed together with everything result-determining) as the
    // journal digest.
    let keys: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "{}/{}@{}",
                workloads[c.scenario_ix].name,
                c.experiment.render(),
                c.cores
            )
        })
        .collect();
    let digests: Vec<u64> = cells
        .iter()
        .enumerate()
        .map(|(ix, c)| {
            let mut h = fnv1a(FNV_OFFSET, env!("CARGO_PKG_VERSION").as_bytes());
            h = fnv1a(h, format!("{:?}", spec.scale).as_bytes());
            h = fnv1a(h, &fuel.to_le_bytes());
            h = fnv1a(h, keys[ix].as_bytes());
            if c.experiment == CampaignExperiment::CoreSweep {
                for &sc in &sweep_cores {
                    h = fnv1a(h, &(sc as u64).to_le_bytes());
                }
            }
            // The reseeded scenario spec covers the scenario's entire
            // result-relevant content, campaign seed offset included.
            fnv1a(h, reseeded[c.scenario_ix].to_toml().as_bytes())
        })
        .collect();
    let faults: Vec<Option<Fault>> = match &options.faults {
        Some(plan) => keys.iter().map(|k| plan.fault_for(k, &keys)).collect(),
        None => vec![None; cells.len()],
    };
    let (stall_ms, transient_faults) = options
        .faults
        .as_ref()
        .map(|p| (p.stall_ms, p.transient))
        .unwrap_or((0, false));

    // Lane-parallel batching: with `lanes > 1` every scenario gets one
    // shared SimCache (compile/decode/report dedup across its cells)
    // and cells run under the batched engine. Cached values are
    // deterministic, so the report stays byte-identical to a
    // single-lane run.
    let lanes = options.lanes.max(1);
    let engine = options.engine.unwrap_or(if lanes > 1 {
        EngineSel::Batched
    } else {
        EngineSel::Decoded
    });
    let mut base_opts = ExperimentOptions::default()
        .with_engine(engine)
        .with_lanes(lanes);
    base_opts.fast_forward = options.fast_forward;
    let caches: Vec<Option<Arc<SimCache>>> = workloads
        .iter()
        .map(|_| (lanes > 1).then(|| Arc::new(SimCache::new())))
        .collect();

    enum CellOutcome {
        /// A completed row, and whether it came from the journal.
        Row(Box<CampaignRow>, bool),
        Failed(CellFailure),
    }
    let ixs: Vec<usize> = (0..cells.len()).collect();
    let outcomes: Vec<CellOutcome> = ixs
        .par_iter()
        .map(|&ix| {
            let cell = cells[ix];
            let w = &workloads[cell.scenario_ix];
            if options.resume {
                if let Some(row) = journal
                    .as_ref()
                    .and_then(|j| j.load(digests[ix]))
                    .and_then(|text| decode_row(&text))
                {
                    return CellOutcome::Row(Box::new(row), true);
                }
            }
            // Fault-injected cells run single-lane without the shared
            // cache: a cell that panics or stalls mid-simulation must
            // not seed (or poison) state other cells consume.
            let cell_opts = match (faults[ix], &caches[cell.scenario_ix]) {
                (None, Some(cache)) => base_opts.clone().with_cache(cache.clone()),
                (Some(_), _) => base_opts.clone().with_lanes(1),
                (None, None) => base_opts.clone(),
            };
            let result = run_cell_resilient(
                |cell_fuel| {
                    run_cell(
                        cell,
                        &sweep_cores,
                        w,
                        &cell_opts.clone().with_fuel(cell_fuel),
                    )
                },
                fuel,
                &spec.resilience,
                faults[ix],
                stall_ms,
                transient_faults,
            );
            match result {
                Ok(row) => {
                    if let Some(j) = &journal {
                        // Journal errors are not worth failing the cell
                        // over; the run still completes in memory.
                        let _ = j.store(digests[ix], &encode_row(&row));
                    }
                    CellOutcome::Row(Box::new(row), false)
                }
                Err((kind, message, retries)) => CellOutcome::Failed(CellFailure {
                    scenario: w.name.clone(),
                    experiment: cell.experiment.render().to_string(),
                    cores: cell.cores,
                    kind,
                    retries,
                    message,
                }),
            }
        })
        .collect();

    let mut stats = CampaignRunStats {
        cells: cells.len(),
        ..CampaignRunStats::default()
    };
    let mut rows: Vec<CampaignRow> = Vec::new();
    let mut failures: Vec<CellFailure> = Vec::new();
    for outcome in outcomes {
        match outcome {
            CellOutcome::Row(row, hit) => {
                if hit {
                    stats.journal_hits += 1;
                } else {
                    stats.simulated += 1;
                }
                rows.push(*row);
            }
            CellOutcome::Failed(failure) => {
                stats.failed += 1;
                failures.push(failure);
            }
        }
    }

    let derived = derive_rows(
        spec,
        &reseeded,
        &workloads,
        &rows,
        &mut failures,
        journal.as_ref().filter(|_| options.faults.is_none()),
        options.resume,
        &mut stats,
    );

    let report = CampaignReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        scale: format!("{:?}", spec.scale),
        seed: spec.seed,
        scenarios: reseeded.iter().map(|s| s.name.clone()).collect(),
        rows,
        derived,
        failures,
    };
    Ok((report, stats))
}

/// Journal encoding of one [`DerivedRow`] (`helix-derived v1`). Floats
/// are `f64::to_bits` hex, exactly like [`encode_row`], so a journaled
/// derived row reproduces its report bytes.
fn encode_derived(d: &DerivedRow) -> String {
    let mut out = String::from("helix-derived v1\n");
    let _ = writeln!(out, "scenario\t{}", d.scenario);
    let _ = writeln!(out, "kind\t{}", d.kind);
    let _ = writeln!(out, "cores\t{}", d.cores);
    let _ = writeln!(out, "coverage\t{:016x}", d.coverage.to_bits());
    let _ = writeln!(out, "speedup\t{:016x}", d.speedup.to_bits());
    let _ = writeln!(out, "amdahl_bound\t{:016x}", d.amdahl_bound.to_bits());
    let _ = writeln!(out, "bound_frac\t{:016x}", d.bound_frac.to_bits());
    for nest in &d.nests {
        // Name last: names may contain anything but newlines/tabs.
        let _ = writeln!(
            out,
            "nest\t{:016x}\t{:016x}\t{:016x}\t{:016x}\t{}\t{:016x}\t{}",
            nest.weight.to_bits(),
            nest.glue_weight.to_bits(),
            nest.coverage.to_bits(),
            nest.program_coverage.to_bits(),
            nest.plans,
            nest.speedup.to_bits(),
            nest.name
        );
    }
    out
}

/// Decode a journaled derived row. `None` on any malformed input — the
/// caller treats that as a cache miss and re-derives.
fn decode_derived(text: &str) -> Option<DerivedRow> {
    let mut lines = text.lines();
    if lines.next()? != "helix-derived v1" {
        return None;
    }
    let f64_of = |s: &str| u64::from_str_radix(s, 16).ok().map(f64::from_bits);
    let mut d = DerivedRow {
        scenario: String::new(),
        kind: String::new(),
        cores: 0,
        coverage: 0.0,
        speedup: 0.0,
        amdahl_bound: 0.0,
        bound_frac: 0.0,
        nests: Vec::new(),
    };
    for line in lines {
        let (key, rest) = line.split_once('\t')?;
        match key {
            "scenario" => d.scenario = rest.to_string(),
            "kind" => d.kind = rest.to_string(),
            "cores" => d.cores = rest.parse().ok()?,
            "coverage" => d.coverage = f64_of(rest)?,
            "speedup" => d.speedup = f64_of(rest)?,
            "amdahl_bound" => d.amdahl_bound = f64_of(rest)?,
            "bound_frac" => d.bound_frac = f64_of(rest)?,
            "nest" => {
                let mut parts = rest.splitn(7, '\t');
                let nest = DerivedNestRow {
                    weight: f64_of(parts.next()?)?,
                    glue_weight: f64_of(parts.next()?)?,
                    coverage: f64_of(parts.next()?)?,
                    program_coverage: f64_of(parts.next()?)?,
                    plans: parts.next()?.parse().ok()?,
                    speedup: f64_of(parts.next()?)?,
                    name: parts.next()?.to_string(),
                };
                d.nests.push(nest);
            }
            _ => return None,
        }
    }
    (!d.scenario.is_empty() && d.cores > 0).then_some(d)
}

/// One derived-row attempt: a journaled-or-computed row (with its
/// journal-hit flag), a skip, or a classified failure.
type DerivedOutcome = Result<Option<(DerivedRow, bool)>, (FailureKind, String)>;

/// Compute the derived speedup-vs-coverage metrics: one row per
/// scenario, anchored on its `generations` measurement at the largest
/// grid core count, plus per-nest breakdowns for multi-nest scenarios
/// (in-context weights via prefix differencing, per-nest speedups from
/// isolated-nest simulations, and plan→nest attribution through the
/// recorded block boundaries). With a journal, completed derived rows
/// are stored content-addressed (like grid cells) and answered from the
/// journal on resume, so a fully-journaled campaign derives without
/// simulating.
#[allow(clippy::too_many_arguments)]
fn derive_rows(
    spec: &CampaignSpec,
    reseeded: &[ScenarioSpec],
    workloads: &[Workload],
    rows: &[CampaignRow],
    failures: &mut Vec<CellFailure>,
    journal: Option<&Journal>,
    resume: bool,
    stats: &mut CampaignRunStats,
) -> Vec<DerivedRow> {
    if !spec
        .grid
        .experiments
        .contains(&CampaignExperiment::Generations)
    {
        return Vec::new();
    }
    let cores = *spec.grid.cores.iter().max().expect("validated non-empty") as usize;
    let fuel = if spec.resilience.cycle_budget > 0 {
        spec.resilience.cycle_budget as u64
    } else {
        FUEL
    };
    // Same digest recipe as grid cells, under a reserved "derived"
    // pseudo-experiment name so the two namespaces cannot collide.
    let digests: Vec<u64> = reseeded
        .iter()
        .map(|scenario| {
            let mut h = fnv1a(FNV_OFFSET, env!("CARGO_PKG_VERSION").as_bytes());
            h = fnv1a(h, format!("{:?}", spec.scale).as_bytes());
            h = fnv1a(h, &fuel.to_le_bytes());
            h = fnv1a(h, format!("{}/derived@{cores}", scenario.name).as_bytes());
            fnv1a(h, scenario.to_toml().as_bytes())
        })
        .collect();
    // The vendored rayon subset has no `zip`; index instead.
    let ixs: Vec<usize> = (0..reseeded.len()).collect();
    let results: Vec<DerivedOutcome> = ixs
        .par_iter()
        .map(|&ix| {
            let (scenario, w) = (&reseeded[ix], &workloads[ix]);
            if resume {
                if let Some(row) = journal
                    .and_then(|j| j.load(digests[ix]))
                    .and_then(|text| decode_derived(&text))
                {
                    return Ok(Some((row, true)));
                }
            }
            // A scenario whose generations cell failed has no anchor
            // for derivation; the cell failure is already recorded, so
            // just skip the derived row.
            let Some((speedup, seq_cycles)) = rows
                .iter()
                .find(|r| r.scenario == w.name && r.experiment == "generations" && r.cores == cores)
                .and_then(|r| Some((r.helix_speedup?, r.seq_cycles?)))
            else {
                return Ok(None);
            };
            let body = || -> Result<DerivedRow, ExpError> {
                let compiled = compile(&w.program, &HccConfig::v3(cores as u32))?;
                let coverage = compiled.stats.coverage.clamp(0.0, 1.0);
                let amdahl_bound = 1.0 / ((1.0 - coverage) + coverage / cores as f64);
                // Everything in a derived row is v3-anchored (the headline
                // speedup is the generations experiment's HELIX-RC run and
                // program_coverage comes from the v3 compile above), so the
                // isolated nests compile with v3 too, regardless of the
                // scenario's own `run.compiler`.
                let nests = nest_rows(
                    scenario,
                    spec.scale,
                    cores,
                    fuel,
                    Some(seq_cycles),
                    CompilerGen::V3,
                )?
                .into_iter()
                .zip(&w.nests)
                .map(|(row, boundary)| {
                    let (program_coverage, _) =
                        compiled.coverage_in_blocks(boundary.first_block, boundary.end_block);
                    DerivedNestRow {
                        name: row.name,
                        weight: row.weight,
                        glue_weight: row.glue_weight,
                        coverage: row.coverage,
                        program_coverage,
                        plans: row.plans,
                        speedup: row.speedup,
                    }
                })
                .collect();
                Ok(DerivedRow {
                    scenario: w.name.clone(),
                    kind: w.kind.render().into(),
                    cores,
                    coverage,
                    speedup,
                    amdahl_bound,
                    bound_frac: speedup / amdahl_bound,
                    nests,
                })
            };
            // Derivation failures degrade like cell failures instead of
            // poisoning the report.
            match catch_unwind(AssertUnwindSafe(body)) {
                Ok(Ok(row)) => {
                    if let Some(j) = journal {
                        let _ = j.store(digests[ix], &encode_derived(&row));
                    }
                    Ok(Some((row, false)))
                }
                Ok(Err(e)) => Err((FailureKind::Error, e.to_string())),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "panic with non-string payload".into());
                    Err((FailureKind::Panic, message))
                }
            }
        })
        .collect();
    let mut derived = Vec::new();
    for (ix, result) in results.into_iter().enumerate() {
        match result {
            Ok(Some((row, hit))) => {
                if hit {
                    stats.derived_hits += 1;
                } else {
                    stats.derived_computed += 1;
                }
                derived.push(row);
            }
            Ok(None) => {}
            Err((kind, message)) => failures.push(CellFailure {
                scenario: workloads[ix].name.clone(),
                experiment: "derived".to_string(),
                cores,
                kind,
                retries: 0,
                message,
            }),
        }
    }
    derived
}

/// Load and run a campaign file in one call.
///
/// Legacy convenience: thin wrapper over [`load_campaign`] +
/// [`run_campaign`]. Prefer the unified
/// [`api::execute`](crate::api::execute) path in new code.
pub fn run_campaign_file(path: &Path) -> Result<CampaignReport, ExpError> {
    let (spec, scenarios) = load_campaign(path)?;
    run_campaign(&spec, &scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::compiler_generations;
    use helix_workloads::{builtin_spec, CampaignGrid, Scale};

    fn tiny_campaign(experiments: Vec<CampaignExperiment>) -> (CampaignSpec, Vec<ScenarioSpec>) {
        let spec = CampaignSpec {
            name: "tiny".into(),
            description: "unit fixture".into(),
            scenarios: vec!["unused.toml".into()],
            scale: Scale::Test,
            seed: 0,
            grid: CampaignGrid {
                cores: vec![8],
                sweep_cores: vec![],
                experiments,
                nest_override: None,
            },
            resilience: Default::default(),
        };
        (spec, vec![builtin_spec("175.vpr").unwrap()])
    }

    /// Grid lowering: a generations cell must reproduce the exact
    /// numbers of the equivalent hand-built experiment call.
    #[test]
    fn generations_cell_matches_direct_experiment_call() {
        let (spec, scenarios) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let report = run_campaign(&spec, &scenarios).unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];

        let w = workload_from_spec(&scenarios[0], Scale::Test).unwrap();
        let direct = compiler_generations(&w, 8, &ExperimentOptions::default()).unwrap();
        assert_eq!(row.helix_speedup, Some(direct.helix_rc));
        assert_eq!(row.seq_cycles, Some(direct.seq_cycles));
        assert_eq!(row.helix_cycles, Some(direct.helix_cycles));
        assert_eq!(
            row.points,
            vec![
                ("HCCv1".to_string(), direct.v1),
                ("HCCv2".to_string(), direct.v2),
                ("HELIX-RC".to_string(), direct.helix_rc),
            ]
        );
        assert_eq!(row.paper_speedup, Some(6.1));
    }

    /// Same campaign + seed twice => byte-identical reports.
    #[test]
    fn campaign_reports_are_byte_identical() {
        let (spec, scenarios) = tiny_campaign(vec![
            CampaignExperiment::Generations,
            CampaignExperiment::CoupledVsRing,
        ]);
        let a = run_campaign(&spec, &scenarios).unwrap();
        let b = run_campaign(&spec, &scenarios).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    /// The campaign seed offset re-rolls distribution-baked scenarios.
    #[test]
    fn seed_offset_changes_distribution_scenarios() {
        let (mut spec, _) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let scenarios = vec![builtin_spec("910.bursty").unwrap()];
        let base = run_campaign(&spec, &scenarios).unwrap();
        spec.seed = 1;
        let reseeded = run_campaign(&spec, &scenarios).unwrap();
        assert_eq!(reseeded.seed, 1);
        assert_ne!(
            base.rows[0].seq_cycles, reseeded.rows[0].seq_cycles,
            "seed offset must perturb the baked work tables"
        );
    }

    #[test]
    fn helix_speedups_come_from_generations_rows() {
        let (spec, scenarios) = tiny_campaign(vec![
            CampaignExperiment::CoupledVsRing,
            CampaignExperiment::Generations,
        ]);
        let report = run_campaign(&spec, &scenarios).unwrap();
        let speedups = report.helix_speedups();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, "175.vpr");
        assert!(speedups[0].1 > 1.0);
    }

    #[test]
    fn table_renders_geomeans_and_groups() {
        let (spec, scenarios) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let report = run_campaign(&spec, &scenarios).unwrap();
        let text = report.table();
        assert!(text.contains("== generations @ 8 cores =="), "{text}");
        assert!(text.contains("INT geomean"), "{text}");
        assert!(text.contains("175.vpr"), "{text}");
    }

    #[test]
    fn empty_scenario_set_is_an_error() {
        let (spec, _) = tiny_campaign(vec![CampaignExperiment::Generations]);
        assert!(run_campaign(&spec, &[]).is_err());
    }

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("helix-campaign-test-{}-{tag}", std::process::id()))
    }

    /// An injected persistent panic becomes a `failures` row; the run
    /// completes and every other cell's result is kept.
    #[test]
    fn injected_fault_enumerates_failure_instead_of_aborting() {
        let (mut spec, scenarios) = tiny_campaign(vec![
            CampaignExperiment::Generations,
            CampaignExperiment::CoupledVsRing,
        ]);
        spec.resilience.max_retries = 0;
        let options = CampaignRunOptions {
            faults: Some(FaultPlan {
                seed: 1,
                panics: 1,
                ..FaultPlan::default()
            }),
            ..CampaignRunOptions::default()
        };
        let report = run_campaign_with(&spec, &scenarios, &options).unwrap();
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert_eq!(report.failures[0].kind, FailureKind::Panic);
        assert!(report.failures[0].message.contains("chaos"));
        assert_eq!(report.rows.len(), 1, "the other cell must survive");
        let json = report.to_json();
        assert!(json.contains("\"failures\""), "{json}");
        assert!(json.contains("\"kind\": \"panic\""), "{json}");
        assert!(report.table().contains("== failures (1) =="));
    }

    /// A transient injected fault is absorbed by one retry: the report
    /// is byte-identical to a fault-free run.
    #[test]
    fn transient_fault_recovers_and_matches_clean_run() {
        let (spec, scenarios) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let clean = run_campaign(&spec, &scenarios).unwrap();
        let options = CampaignRunOptions {
            faults: Some(FaultPlan {
                seed: 3,
                panics: 1,
                transient: true,
                ..FaultPlan::default()
            }),
            ..CampaignRunOptions::default()
        };
        let recovered = run_campaign_with(&spec, &scenarios, &options).unwrap();
        assert!(recovered.failures.is_empty(), "{:?}", recovered.failures);
        assert_eq!(clean.to_json(), recovered.to_json());
    }

    /// Crash/Ctrl-C story end-to-end: a chaos run journals its
    /// completed cells; a resume without chaos re-runs only the failed
    /// cell and lands on a report byte-identical to a clean run.
    #[test]
    fn resume_reproduces_clean_report_byte_identically() {
        let (mut spec, scenarios) = tiny_campaign(vec![
            CampaignExperiment::Generations,
            CampaignExperiment::CoupledVsRing,
        ]);
        spec.resilience.max_retries = 0;
        let clean = run_campaign(&spec, &scenarios).unwrap();
        let dir = temp_journal("resume");
        std::fs::remove_dir_all(&dir).ok();
        let interrupted = run_campaign_with(
            &spec,
            &scenarios,
            &CampaignRunOptions {
                journal: Some(dir.clone()),
                faults: Some(FaultPlan {
                    seed: 1,
                    panics: 1,
                    ..FaultPlan::default()
                }),
                ..CampaignRunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(interrupted.failures.len(), 1);
        let resumed = run_campaign_with(
            &spec,
            &scenarios,
            &CampaignRunOptions {
                journal: Some(dir.clone()),
                resume: true,
                ..CampaignRunOptions::default()
            },
        )
        .unwrap();
        assert!(resumed.failures.is_empty(), "{:?}", resumed.failures);
        assert_eq!(clean.to_json(), resumed.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Resume really reads the journal: a tampered journaled value
    /// shows up verbatim in the resumed report (cache hit, not re-run).
    #[test]
    fn resume_trusts_journaled_cells() {
        let (spec, scenarios) = tiny_campaign(vec![CampaignExperiment::Generations]);
        let dir = temp_journal("trust");
        std::fs::remove_dir_all(&dir).ok();
        let options = CampaignRunOptions {
            journal: Some(dir.clone()),
            ..CampaignRunOptions::default()
        };
        run_campaign_with(&spec, &scenarios, &options).unwrap();
        // Tamper with the one journaled cell: seq_cycles -> 424242.
        let mut tampered = 0;
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "cell") {
                let text = std::fs::read_to_string(&path).unwrap();
                let patched: String = text
                    .lines()
                    .map(|l| {
                        if l.starts_with("seq_cycles\t") {
                            tampered += 1;
                            "seq_cycles\t424242".to_string()
                        } else {
                            l.to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
                    + "\n";
                std::fs::write(&path, patched).unwrap();
            }
        }
        assert_eq!(tampered, 1);
        let resumed = run_campaign_with(
            &spec,
            &scenarios,
            &CampaignRunOptions {
                journal: Some(dir.clone()),
                resume: true,
                ..CampaignRunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.rows[0].seq_cycles, Some(424242));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A tiny cycle budget fails cells deterministically: same
    /// failures, byte-identical reports, run after run.
    #[test]
    fn cycle_budget_failures_are_deterministic() {
        let (mut spec, scenarios) = tiny_campaign(vec![CampaignExperiment::Generations]);
        spec.resilience.cycle_budget = 1000;
        let a = run_campaign(&spec, &scenarios).unwrap();
        let b = run_campaign(&spec, &scenarios).unwrap();
        assert!(!a.failures.is_empty());
        assert!(a
            .failures
            .iter()
            .all(|f| f.kind == FailureKind::CycleBudget));
        assert_eq!(a.to_json(), b.to_json());
    }

    /// Journal round-trip preserves rows exactly, including float bits.
    #[test]
    fn encode_decode_row_roundtrip() {
        let row = CampaignRow {
            scenario: "900.chase".into(),
            kind: "int".into(),
            experiment: "generations".into(),
            cores: 8,
            helix_speedup: Some(3.756_218_905_3),
            paper_speedup: Some(6.1),
            seq_cycles: Some(123_456_789),
            helix_cycles: Some(32_860_001),
            comm_frac: Some(0.071_356_78),
            overheads: Some([0.1, 0.0, 0.25, 0.3, 0.000_001, 0.9, 1.0 / 3.0]),
            points: vec![("HCCv1".into(), 1.5), ("HELIX-RC".into(), 3.756_218_905_3)],
        };
        let decoded = decode_row(&encode_row(&row)).unwrap();
        assert_eq!(decoded, row);
        assert!(decode_row("not a cell\n").is_none());
        assert!(decode_row("helix-cell v1\nbogus-key\tvalue\n").is_none());
    }
}
