//! Per-cycle overhead attribution (paper §6.4, Fig. 12).
//!
//! Every core-cycle of a run is charged to exactly one bucket; the Fig. 12
//! taxonomy normalizes the non-computation buckets to explain the gap
//! between achieved and ideal speedup.

use serde::{Deserialize, Serialize};

/// Where a core-cycle went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bucket {
    /// Issuing (or inherently stalled on) the original program's work.
    Computation,
    /// Instructions added by parallelization (induction re-computation,
    /// demoted-scalar traffic, reduction bookkeeping).
    AdditionalInsts,
    /// Executing `wait`/`signal` instructions themselves (including
    /// squashed duplicates).
    WaitSignal,
    /// Stalled on the private memory hierarchy.
    Memory,
    /// Idle at the loop barrier after finishing assigned iterations.
    IterationImbalance,
    /// Idle because the invocation had fewer iterations than cores.
    LowTripCount,
    /// Stalled on in-flight communication (shared data or signals).
    Communication,
    /// Stalled because a predecessor iteration has not produced yet.
    DependenceWaiting,
    /// Idle while another core runs non-parallelized code.
    SerialIdle,
}

impl Bucket {
    /// All buckets, in reporting order.
    pub const ALL: [Bucket; 9] = [
        Bucket::Computation,
        Bucket::AdditionalInsts,
        Bucket::WaitSignal,
        Bucket::Memory,
        Bucket::IterationImbalance,
        Bucket::LowTripCount,
        Bucket::Communication,
        Bucket::DependenceWaiting,
        Bucket::SerialIdle,
    ];

    /// The seven overhead categories of Fig. 12 (everything except
    /// computation and serial idling).
    pub const FIG12: [Bucket; 7] = [
        Bucket::AdditionalInsts,
        Bucket::WaitSignal,
        Bucket::Memory,
        Bucket::IterationImbalance,
        Bucket::LowTripCount,
        Bucket::Communication,
        Bucket::DependenceWaiting,
    ];

    /// Column label used in reports (matches the paper's figure).
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Computation => "Computation",
            Bucket::AdditionalInsts => "Additional Instructions",
            Bucket::WaitSignal => "Wait/Signal Instructions",
            Bucket::Memory => "Memory",
            Bucket::IterationImbalance => "Iteration Imbalance",
            Bucket::LowTripCount => "Low Trip Count",
            Bucket::Communication => "Communication",
            Bucket::DependenceWaiting => "Dependence Waiting",
            Bucket::SerialIdle => "Serial Idle",
        }
    }

    /// Constant-time slot in the counts array (charged once per core per
    /// cycle, so no table scan); order matches [`Bucket::ALL`].
    fn index(self) -> usize {
        match self {
            Bucket::Computation => 0,
            Bucket::AdditionalInsts => 1,
            Bucket::WaitSignal => 2,
            Bucket::Memory => 3,
            Bucket::IterationImbalance => 4,
            Bucket::LowTripCount => 5,
            Bucket::Communication => 6,
            Bucket::DependenceWaiting => 7,
            Bucket::SerialIdle => 8,
        }
    }
}

/// Per-core cycle accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attribution {
    counts: Vec<[u64; 9]>,
}

impl Attribution {
    /// Accounting for `cores` cores.
    pub fn new(cores: usize) -> Attribution {
        Attribution {
            counts: vec![[0; 9]; cores],
        }
    }

    /// Rebuild for `cores` cores, reusing a retired table's allocation.
    /// Observably identical to [`Attribution::new`].
    pub fn renew(mut self, cores: usize) -> Attribution {
        self.counts.clear();
        self.counts.resize(cores, [0; 9]);
        self
    }

    /// Charge one cycle of `core` to `bucket`.
    pub fn charge(&mut self, core: usize, bucket: Bucket) {
        self.counts[core][bucket.index()] += 1;
    }

    /// Charge `n` cycles of `core` to `bucket`.
    pub fn charge_n(&mut self, core: usize, bucket: Bucket, n: u64) {
        self.counts[core][bucket.index()] += n;
    }

    /// Total cycles charged to `bucket` across all cores.
    pub fn total(&self, bucket: Bucket) -> u64 {
        self.counts.iter().map(|c| c[bucket.index()]).sum()
    }

    /// Cycles charged to `bucket` on `core`.
    pub fn of_core(&self, core: usize, bucket: Bucket) -> u64 {
        self.counts[core][bucket.index()]
    }

    /// Grand total cycles.
    pub fn grand_total(&self) -> u64 {
        self.counts.iter().flat_map(|c| c.iter()).sum()
    }

    /// Fig. 12 row: each overhead category as a fraction of all overhead
    /// cycles (categories sum to 1; zero overhead yields all zeros).
    pub fn overhead_fractions(&self) -> [f64; 7] {
        let overhead: u64 = Bucket::FIG12.iter().map(|b| self.total(*b)).sum();
        let mut out = [0.0; 7];
        if overhead == 0 {
            return out;
        }
        for (i, b) in Bucket::FIG12.iter().enumerate() {
            out[i] = self.total(*b) as f64 / overhead as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_reporting_order() {
        for (i, b) in Bucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i, "{b:?} out of order");
        }
    }

    #[test]
    fn charge_and_total() {
        let mut a = Attribution::new(2);
        a.charge(0, Bucket::Computation);
        a.charge(0, Bucket::Memory);
        a.charge(1, Bucket::Memory);
        a.charge_n(1, Bucket::Communication, 5);
        assert_eq!(a.total(Bucket::Memory), 2);
        assert_eq!(a.total(Bucket::Communication), 5);
        assert_eq!(a.of_core(0, Bucket::Computation), 1);
        assert_eq!(a.grand_total(), 8);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut a = Attribution::new(1);
        a.charge_n(0, Bucket::Memory, 30);
        a.charge_n(0, Bucket::Communication, 50);
        a.charge_n(0, Bucket::DependenceWaiting, 20);
        a.charge_n(0, Bucket::Computation, 1000); // excluded from overhead
        let f = a.overhead_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[2] - 0.3).abs() < 1e-12); // Memory at index 2
    }

    #[test]
    fn zero_overhead_is_all_zero() {
        let a = Attribution::new(4);
        assert_eq!(a.overhead_fractions(), [0.0; 7]);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = Bucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), Bucket::ALL.len());
    }
}
