//! # helix-bench
//!
//! Figure and table regeneration for the HELIX-RC reproduction: one
//! function per table/figure of the paper's evaluation, each printing
//! the same rows/series the paper reports (paper value alongside the
//! measured one).
//!
//! Invoke through the `figures` binary:
//!
//! ```text
//! cargo run --release -p helix-bench --bin figures -- all
//! cargo run --release -p helix-bench --bin figures -- fig07 fig12
//! ```
//!
//! The cross-benchmark sweep figures (Fig. 7/9/12) are **campaign
//! driven**: they run the committed `campaigns/paper.toml` over the
//! scenario specs in `scenarios/`, so any new committed scenario shows
//! up in those tables automatically — no figure code changes.

#![warn(missing_docs)]

pub mod json;

use helix_rc::analysis_figs::{accuracy_sweep, recompute_reduction, tlp_splitting};
use helix_rc::campaign::{load_campaign, run_campaign, CampaignReport, CampaignRow};
use helix_rc::experiment::{
    compiler_generations, core_type_sweep, coupled_vs_ring, decoupling_lattice, iteration_lengths,
    link_latency_settings, node_memory_settings, sharing_profile, signal_bandwidth_settings,
    sweep_core_count, sweep_ring, ExperimentOptions, LatticePoint,
};
use helix_rc::hcc::{compile, HccConfig};
use helix_rc::related::design_space_table;
use helix_rc::report::{bar, pct, table, x};
use helix_rc::workloads::{cint_suite, geomean, paper_row, suite, CampaignExperiment, Kind, Scale};
use std::path::PathBuf;

/// Problem scale used by the harness (kept at `Test` so a full run of
/// every figure completes in minutes; pass `--full` for larger inputs).
pub fn harness_scale(full: bool) -> Scale {
    if full {
        Scale::Full
    } else {
        Scale::Test
    }
}

/// Result alias.
pub type R = Result<(), Box<dyn std::error::Error + Send + Sync>>;

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Locate the committed paper campaign (`campaigns/paper.toml`): tried
/// relative to the working directory first (how CI and `cargo run` from
/// the repo root see it), then relative to this crate's manifest.
pub fn paper_campaign_path() -> Result<PathBuf, String> {
    let candidates = [
        PathBuf::from("campaigns/paper.toml"),
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../campaigns/paper.toml"),
    ];
    for path in &candidates {
        if path.is_file() {
            return Ok(path.clone());
        }
    }
    Err(format!(
        "cannot find campaigns/paper.toml (looked at {}); run from the repository root",
        candidates
            .iter()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>()
            .join(" and ")
    ))
}

/// Core count the paper reports its sweep figures at.
const FIGURE_CORES: i64 = 16;

/// Run the committed paper campaign restricted to `experiments` (and
/// optionally one benchmark family) at `scale`. This is how the sweep
/// figures consume `scenarios/`: the scenario set comes from
/// `campaigns/paper.toml`, so a missing or broken spec file fails with
/// a path-naming error instead of a panic mid-figure. Filtering by kind
/// happens *before* the run so an INT-only figure never pays for FP
/// simulations, and the core axis is pinned to the figures' 16-core
/// machine so a widened campaign grid cannot silently mix core counts
/// into one table.
fn scenario_campaign(
    experiments: &[CampaignExperiment],
    scale: Scale,
    kind: Option<Kind>,
) -> Result<CampaignReport, Box<dyn std::error::Error + Send + Sync>> {
    let path = paper_campaign_path()?;
    let (mut campaign, mut scenarios) = load_campaign(&path)?;
    campaign.grid.experiments = experiments.to_vec();
    campaign.grid.cores = vec![FIGURE_CORES];
    campaign.scale = scale;
    if let Some(kind) = kind {
        scenarios.retain(|s| s.kind == kind);
    }
    Ok(run_campaign(&campaign, &scenarios)?)
}

/// Look up a labelled point in a campaign row.
fn point(row: &CampaignRow, label: &str) -> Result<f64, String> {
    row.points
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("{}/{}: no point '{label}'", row.scenario, row.experiment))
}

/// Fig. 1: HCCv1 vs HCCv2 on conventional hardware, 16 cores.
pub fn fig01(scale: Scale) -> R {
    header("Figure 1 — compiler-only improvements (HCCv1 vs HCCv2, 16 cores)");
    let mut rows = Vec::new();
    let mut int_v1 = Vec::new();
    let mut int_v2 = Vec::new();
    let mut fp_v1 = Vec::new();
    let mut fp_v2 = Vec::new();
    for w in suite(scale) {
        let row = compiler_generations(&w, 16, &ExperimentOptions::default())?;
        if w.kind == helix_rc::workloads::Kind::Int {
            int_v1.push(row.v1);
            int_v2.push(row.v2);
        } else {
            fp_v1.push(row.v1);
            fp_v2.push(row.v2);
        }
        rows.push(vec![row.name.clone(), x(row.v1), x(row.v2)]);
    }
    rows.push(vec![
        "INT geomean".into(),
        x(geomean(int_v1)),
        x(geomean(int_v2)),
    ]);
    rows.push(vec![
        "FP geomean".into(),
        x(geomean(fp_v1)),
        x(geomean(fp_v2)),
    ]);
    println!("{}", table(&["benchmark", "HCCv1", "HCCv2"], &rows));
    println!("paper: FP improves 2.4x -> 11x; INT stays nearly flat.");
    Ok(())
}

/// Fig. 2: dependence-analysis accuracy per tier on the small hot loops.
pub fn fig02(scale: Scale) -> R {
    header("Figure 2 — data-dependence analysis accuracy on small hot loops");
    let fig = accuracy_sweep(&cint_suite(scale))?;
    for (tier, acc) in fig.tiers.iter().zip(&fig.accuracy) {
        println!("{}", bar(tier, *acc * 100.0, 100.0, 40));
    }
    println!(
        "\nmeasured over {} loops; paper: 48% (VLLPA) -> 81% (+lib calls).",
        fig.loops
    );
    Ok(())
}

/// Fig. 3: predictable variables cut register communication.
pub fn fig03(scale: Scale) -> R {
    header("Figure 3 — re-computation removes register communication");
    let fig = recompute_reduction(&cint_suite(scale))?;
    println!(
        "naive forwarding:   {} register values + {} memory sites = 100%",
        fig.naive_regs, fig.memory_sites
    );
    println!(
        "after re-compute:   {} register values + {} memory sites = {}",
        fig.remaining_regs,
        fig.memory_sites,
        pct(fig.remaining_fraction())
    );
    println!(
        "memory share of remaining communication: {}",
        pct(fig.memory_share())
    );
    println!("\npaper: ~15% remains, dominated by memory locations.");
    Ok(())
}

/// Fig. 4a/4b/4c: iteration-length CDF and sharing profile.
pub fn fig04(scale: Scale) -> R {
    header("Figure 4a — loop iteration execution time CDF (single core)");
    let mut all: Vec<u32> = Vec::new();
    for w in cint_suite(scale) {
        all.extend(iteration_lengths(&w, &ExperimentOptions::default())?);
    }
    all.sort_unstable();
    let total = all.len().max(1);
    for threshold in [25u32, 75, 95, 110, 260] {
        let below = all.partition_point(|&v| v <= threshold);
        println!(
            "  <= {threshold:>3} cycles: {:>5.1}% of iterations",
            100.0 * below as f64 / total as f64
        );
    }
    println!("  (coherence round trips: Ivy Bridge 75, Sandy Bridge 95, Nehalem 110)");

    header("Figure 4b/4c — producer->consumer distance and consumer counts (16 cores)");
    let mut dist = [0.0f64; 17];
    let mut cons = [0.0f64; 17];
    let mut n = 0.0;
    for w in cint_suite(scale) {
        let (d, c) = sharing_profile(&w, 16, &ExperimentOptions::default())?;
        for (i, v) in d.iter().enumerate().take(dist.len()) {
            dist[i] += v;
        }
        for (i, v) in c.iter().enumerate().take(cons.len()) {
            cons[i] += v;
        }
        n += 1.0;
    }
    println!("hop distance to first consumer (paper: 1:12% 2:22% 3:39% 4:12% 5:9% 6+:6%):");
    let six_plus: f64 = dist[6..].iter().sum::<f64>() / n;
    for (h, d) in dist.iter().enumerate().take(6).skip(1) {
        println!("  {h} hop(s): {}", pct(d / n));
    }
    println!("  6+ hops: {}", pct(six_plus));
    println!("consumers per shared value (paper: 1:16% 2:8% 3:21% 4:12% 5:34% 6+:9%):");
    let six_plus_c: f64 = cons[6..].iter().sum::<f64>() / n;
    for (k, c) in cons.iter().enumerate().take(6).skip(1) {
        println!("  {k} consumer(s): {}", pct(c / n));
    }
    println!("  6+ consumers: {}", pct(six_plus_c));
    let multi: f64 = 1.0 - cons[1] / n;
    println!("  multi-consumer share: {} (paper: 86%)", pct(multi));
    Ok(())
}

/// Fig. 5: coupled vs decoupled execution of the vpr hot loop.
pub fn fig05(scale: Scale) -> R {
    header("Figure 5 — coupled vs decoupled communication (175.vpr loop)");
    let w = helix_rc::workloads::by_name("175.vpr", scale)
        .ok_or("175.vpr missing from the built-in suite")?;
    let row = coupled_vs_ring(&w, 16, &ExperimentOptions::default())?;
    println!(
        "coupled (conventional): {:6.1}% of sequential time, {} of busy cycles communicating",
        row.conventional_pct,
        pct(row.conventional_comm_frac)
    );
    println!(
        "decoupled (ring cache): {:6.1}% of sequential time, {} of busy cycles communicating",
        row.ring_pct,
        pct(row.ring_comm_frac)
    );
    Ok(())
}

/// Table 1: phases and parallel-loop coverage per compiler.
pub fn table1(scale: Scale) -> R {
    header("Table 1 — parallelized benchmark characteristics");
    let mut rows = Vec::new();
    for w in suite(scale) {
        let v1 = compile(&w.program, &HccConfig::v1(16))?;
        let v2 = compile(&w.program, &HccConfig::v2(16))?;
        let v3 = compile(&w.program, &HccConfig::v3(16))?;
        rows.push(vec![
            w.name.to_string(),
            w.paper.phases.to_string(),
            format!(
                "{} (paper {})",
                pct(v3.stats.coverage),
                pct(w.paper.coverage[2])
            ),
            format!(
                "{} (paper {})",
                pct(v2.stats.coverage),
                pct(w.paper.coverage[1])
            ),
            format!(
                "{} (paper {})",
                pct(v1.stats.coverage),
                pct(w.paper.coverage[0])
            ),
        ]);
    }
    println!(
        "{}",
        table(
            &["benchmark", "phases", "HELIX-RC", "HCCv2", "HCCv1"],
            &rows
        )
    );
    Ok(())
}

/// Fig. 7: the headline — HCCv2 vs HELIX-RC speedups, campaign-driven
/// over every committed scenario spec.
pub fn fig07(scale: Scale) -> R {
    header("Figure 7 — HELIX-RC vs HCCv2 speedups (16 cores, scenarios/ campaign)");
    let report = scenario_campaign(&[CampaignExperiment::Generations], scale, None)?;
    let mut rows = Vec::new();
    let mut int_v2 = Vec::new();
    let mut int_rc = Vec::new();
    let mut fp_v2 = Vec::new();
    let mut fp_rc = Vec::new();
    for row in &report.rows {
        let v2 = point(row, "HCCv2")?;
        let rc = point(row, "HELIX-RC")?;
        if row.kind == "int" {
            int_v2.push(v2);
            int_rc.push(rc);
        } else {
            fp_v2.push(v2);
            fp_rc.push(rc);
        }
        rows.push(vec![
            row.scenario.clone(),
            x(v2),
            x(rc),
            row.paper_speedup.map(x).unwrap_or_else(|| "-".into()),
        ]);
    }
    rows.push(vec![
        "INT geomean".into(),
        x(geomean(int_v2)),
        x(geomean(int_rc)),
        "6.85x (SPEC)".into(),
    ]);
    rows.push(vec![
        "FP geomean".into(),
        x(geomean(fp_v2)),
        x(geomean(fp_rc)),
        "11.90x (SPEC)".into(),
    ]);
    println!(
        "{}",
        table(&["benchmark", "HCCv2", "HELIX-RC", "paper HELIX-RC"], &rows)
    );
    println!("(rows come from the scenario specs named by campaigns/paper.toml)");
    Ok(())
}

/// Fig. 8: the decoupling breakdown.
pub fn fig08(scale: Scale) -> R {
    header("Figure 8 — breakdown of decoupling benefits (CINT geomean)");
    let ws = cint_suite(scale);
    let mut per_point = vec![Vec::new(); LatticePoint::ALL.len()];
    for w in &ws {
        for (i, (_, s)) in decoupling_lattice(w, 16, &ExperimentOptions::default())?
            .into_iter()
            .enumerate()
        {
            per_point[i].push(s);
        }
    }
    let geo: Vec<f64> = per_point
        .iter()
        .map(|v| geomean(v.iter().copied()))
        .collect();
    let max = geo.iter().copied().fold(0.0, f64::max);
    for (p, g) in LatticePoint::ALL.iter().zip(&geo) {
        println!("{}", bar(p.label(), *g, max, 40));
    }
    println!("\npaper: most benefit comes from decoupling synchronization and memory.");
    Ok(())
}

/// Fig. 9: HCCv3 code on conventional hardware vs the ring,
/// campaign-driven over every committed integer scenario.
pub fn fig09(scale: Scale) -> R {
    header("Figure 9 — HCCv3 code: conventional (C) vs ring cache (R) (scenarios/ campaign)");
    let report = scenario_campaign(&[CampaignExperiment::CoupledVsRing], scale, Some(Kind::Int))?;
    let mut rows = Vec::new();
    for row in &report.rows {
        rows.push(vec![
            row.scenario.clone(),
            format!("{:.0}%", point(row, "C % of seq")?),
            format!("{:.0}%", point(row, "R % of seq")?),
            format!("{:.1}%", point(row, "C comm frac %")?),
            format!("{:.1}%", point(row, "R comm frac %")?),
        ]);
    }
    println!(
        "{}",
        table(
            &["benchmark", "C time", "R time", "C comm", "R comm"],
            &rows
        )
    );
    println!("(>100% = slower than sequential; the paper's C bars all exceed 100%)");
    Ok(())
}

/// Fig. 10: core-type sensitivity.
pub fn fig10(scale: Scale) -> R {
    header("Figure 10 — speedup by core type (16 cores)");
    let mut rows = Vec::new();
    for w in cint_suite(scale) {
        let r = core_type_sweep(&w, 16, &ExperimentOptions::default())?;
        rows.push(vec![
            r.name.clone(),
            x(r.io2),
            x(r.ooo2),
            x(r.ooo4),
            format!("{:.2}", r.seq_io_over_ooo4),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "benchmark",
                "2-way IO",
                "2-way OoO",
                "4-way OoO",
                "seq IO/OoO4"
            ],
            &rows
        )
    );
    println!("paper: the 4-way OoO sequential baseline is ~1.9x the 2-way IO one.");
    Ok(())
}

/// Fig. 11a–d: sensitivity sweeps.
pub fn fig11(scale: Scale) -> R {
    let ws = cint_suite(scale);
    header("Figure 11a — core count");
    for w in &ws {
        let pts = sweep_core_count(w, &[2, 4, 8, 16], &ExperimentOptions::default())?;
        let line: Vec<String> = pts.iter().map(|(l, s)| format!("{l}: {}", x(*s))).collect();
        println!("{:<12} {}", w.name, line.join("  "));
    }
    header("Figure 11b — adjacent-node link latency");
    for w in &ws {
        let pts = sweep_ring(
            w,
            16,
            &link_latency_settings(),
            &ExperimentOptions::default(),
        )?;
        let line: Vec<String> = pts.iter().map(|(l, s)| format!("{l}: {}", x(*s))).collect();
        println!("{:<12} {}", w.name, line.join("  "));
    }
    header("Figure 11c — signal bandwidth");
    for w in &ws {
        let pts = sweep_ring(
            w,
            16,
            &signal_bandwidth_settings(),
            &ExperimentOptions::default(),
        )?;
        let line: Vec<String> = pts.iter().map(|(l, s)| format!("{l}: {}", x(*s))).collect();
        println!("{:<12} {}", w.name, line.join("  "));
    }
    header("Figure 11d — node memory size");
    for w in &ws {
        let pts = sweep_ring(
            w,
            16,
            &node_memory_settings(),
            &ExperimentOptions::default(),
        )?;
        let line: Vec<String> = pts.iter().map(|(l, s)| format!("{l}: {}", x(*s))).collect();
        println!("{:<12} {}", w.name, line.join("  "));
    }
    Ok(())
}

/// Fig. 12: overhead taxonomy, campaign-driven over every committed
/// scenario.
pub fn fig12(scale: Scale) -> R {
    header("Figure 12 — overheads preventing ideal speedup (scenarios/ campaign)");
    let labels = [
        "added", "wait/sig", "memory", "imbal", "lowtrip", "comm", "depwait",
    ];
    let report = scenario_campaign(&[CampaignExperiment::Overheads], scale, None)?;
    let mut rows = Vec::new();
    for r in &report.rows {
        let measured = r
            .overheads
            .ok_or_else(|| format!("{}: overheads row without fractions", r.scenario))?;
        let paper = paper_row(&r.scenario).map(|p| p.overheads);
        let mut row = vec![r.scenario.clone()];
        for i in 0..7 {
            row.push(match paper {
                Some(p) => format!("{:.0}/{:.0}", 100.0 * measured[i], 100.0 * p[i]),
                None => format!("{:.0}/-", 100.0 * measured[i]),
            });
        }
        let speedup = r.helix_speedup.map(x).unwrap_or_else(|| "-".into());
        row.push(match r.paper_speedup {
            Some(p) => format!("{speedup} (paper {})", x(p)),
            None => speedup,
        });
        rows.push(row);
    }
    let mut headers = vec!["benchmark"];
    headers.extend(labels);
    headers.push("speedup");
    println!("{}", table(&headers, &rows));
    println!("(cells are measured%/paper% of overhead cycles; '-' = not in the paper)");
    Ok(())
}

/// Table 2: the design-space matrix.
pub fn table2() -> R {
    header("Table 2 — decoupling design space");
    println!("{}", design_space_table());
    println!("HELIX-RC is the only scheme decoupling memory communication for actual dependences.");
    Ok(())
}

/// §6.2 text: TLP under conservative vs aggressive splitting.
pub fn text_tlp(scale: Scale) -> R {
    header("§6.2 text — segment splitting vs TLP (abstract 1-IPC model)");
    let fig = tlp_splitting(&cint_suite(scale), 16)?;
    println!(
        "conservative splitting: TLP {:.1}, mean segment {:.1} insts",
        fig.tlp_conservative, fig.seg_conservative
    );
    println!(
        "aggressive splitting:   TLP {:.1}, mean segment {:.1} insts",
        fig.tlp_aggressive, fig.seg_aggressive
    );
    println!("paper: TLP 6.4 -> 14.2; segment size 8.5 -> 3.2 instructions.");
    Ok(())
}

/// §6.3 text: the conservative ring reaches ~ideal performance.
pub fn text_ideal(scale: Scale) -> R {
    header("§6.3 text — default ring vs idealized ring");
    let ws = cint_suite(scale);
    let mut default_g = Vec::new();
    let mut ideal_g = Vec::new();
    for w in &ws {
        let pts = sweep_ring(
            w,
            16,
            &node_memory_settings(),
            &ExperimentOptions::default(),
        )?;
        // node_memory_settings: [Unbounded, 32KB, 1KB(default), 256B]
        ideal_g.push(pts[0].1);
        default_g.push(pts[2].1);
    }
    let d = geomean(default_g);
    let i = geomean(ideal_g);
    println!(
        "default 1KB ring: {} | unbounded ring: {} | ratio {}",
        x(d),
        x(i),
        pct(d / i)
    );
    println!("paper: the conservative configuration reaches ~95% of unbounded resources.");
    Ok(())
}

/// Every figure/table in sequence.
pub fn run_all(scale: Scale) -> R {
    fig01(scale)?;
    fig02(scale)?;
    fig03(scale)?;
    fig04(scale)?;
    fig05(scale)?;
    table1(scale)?;
    fig07(scale)?;
    fig08(scale)?;
    fig09(scale)?;
    fig10(scale)?;
    fig11(scale)?;
    fig12(scale)?;
    table2()?;
    text_tlp(scale)?;
    text_ideal(scale)?;
    Ok(())
}

/// Dispatch one figure by name.
pub fn run_one(name: &str, scale: Scale) -> R {
    match name {
        "fig01" => fig01(scale),
        "fig02" => fig02(scale),
        "fig03" => fig03(scale),
        "fig04" => fig04(scale),
        "fig05" => fig05(scale),
        "table1" => table1(scale),
        "fig07" => fig07(scale),
        "fig08" => fig08(scale),
        "fig09" => fig09(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "table2" => table2(),
        "tlp" => text_tlp(scale),
        "ideal" => text_ideal(scale),
        "all" => run_all(scale),
        other => Err(format!(
            "unknown figure '{other}' (expected one of: {})",
            FIGURES.join(", ")
        )
        .into()),
    }
}

/// Names accepted by [`run_one`].
pub const FIGURES: [&str; 16] = [
    "fig01", "fig02", "fig03", "fig04", "fig05", "table1", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "table2", "tlp", "ideal", "all",
];

/// The campaign-backed subset of [`FIGURES`]: these run
/// `campaigns/paper.toml` over the committed scenario specs, so every
/// new `scenarios/*.toml` shows up in them automatically.
pub const CAMPAIGN_FIGURES: [&str; 3] = ["fig07", "fig09", "fig12"];

// Quiet unused-dependency warnings for crates used only by the binary.
use helix_analysis as _;
use helix_ir as _;
use helix_ring_cache as _;
use helix_sim as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_rejects_unknown() {
        assert!(run_one("nope", Scale::Test).is_err());
    }

    #[test]
    fn table2_prints() {
        table2().unwrap();
    }

    #[test]
    fn figure_list_is_complete() {
        for f in FIGURES {
            assert!(f == "all" || !f.is_empty());
        }
    }

    /// One real figure end-to-end (kept to the cheapest one).
    #[test]
    fn fig03_runs() {
        fig03(Scale::Test).unwrap();
    }
}
