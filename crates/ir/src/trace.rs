//! Execution tracing interfaces.
//!
//! A [`TraceSink`] observes the interpreter's dynamic behaviour:
//! instruction executions, memory accesses, and control flow. The
//! dependence profiler (ground truth for analysis accuracy, paper §2.2)
//! and the simulator's statistics are built on these hooks.

use crate::inst::{Inst, SharedTag};
use crate::types::BlockId;
use serde::{Deserialize, Serialize};

/// Static identity of an instruction: its block and index within the
/// block. Stable across executions, usable as a key in dependence maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstSite {
    /// Containing block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub index: usize,
}

impl std::fmt::Display for InstSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.block, self.index)
    }
}

/// A dynamic memory access observed during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Starting byte address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Whether this is a store.
    pub is_store: bool,
    /// Shared tag if the access was compiler-marked.
    pub shared: Option<SharedTag>,
}

/// Observer of interpreter execution. All methods default to no-ops so
/// sinks implement only what they need.
pub trait TraceSink {
    /// An instruction is executing at `site`.
    fn on_exec(&mut self, site: InstSite, inst: &Inst) {
        let _ = (site, inst);
    }

    /// A memory access completed.
    fn on_mem(&mut self, site: InstSite, access: MemAccess) {
        let _ = (site, access);
    }

    /// Control transferred from `from` to `to`.
    fn on_flow(&mut self, from: BlockId, to: BlockId) {
        let _ = (from, to);
    }
}

/// A sink that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// A sink that counts events, useful in tests and quick profiling.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Number of instructions executed.
    pub insts: u64,
    /// Number of memory accesses.
    pub mem_accesses: u64,
    /// Number of stores (subset of `mem_accesses`).
    pub stores: u64,
    /// Number of control transfers.
    pub flows: u64,
}

impl TraceSink for CountingSink {
    fn on_exec(&mut self, _site: InstSite, _inst: &Inst) {
        self.insts += 1;
    }

    fn on_mem(&mut self, _site: InstSite, access: MemAccess) {
        self.mem_accesses += 1;
        if access.is_store {
            self.stores += 1;
        }
    }

    fn on_flow(&mut self, _from: BlockId, _to: BlockId) {
        self.flows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::AddrExpr;
    use crate::interp::{run_with_sink, Env};
    use crate::types::Ty;

    #[test]
    fn counting_sink_observes_run() {
        let mut b = ProgramBuilder::new("t");
        let r = b.region("buf", 64, Ty::I64);
        let x = b.reg();
        b.const_i(x, 5);
        b.store(x, AddrExpr::region(r, 0), Ty::I64);
        b.load(x, AddrExpr::region(r, 0), Ty::I64);
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let mut sink = CountingSink::default();
        run_with_sink(&p, &mut env, &mut sink).unwrap();
        assert_eq!(sink.insts, 3);
        assert_eq!(sink.mem_accesses, 2);
        assert_eq!(sink.stores, 1);
    }

    #[test]
    fn inst_site_ordering_and_display() {
        let a = InstSite {
            block: BlockId(1),
            index: 2,
        };
        let b = InstSite {
            block: BlockId(1),
            index: 3,
        };
        assert!(a < b);
        assert_eq!(a.to_string(), "bb1:2");
    }
}
