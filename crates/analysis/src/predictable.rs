//! Predictable-variable analysis (paper §2.2, Fig. 3).
//!
//! HELIX-RC avoids communicating most register-carried values by letting
//! every core *re-compute* them locally. A loop-carried or live-out
//! register is predictable when it falls into one of the paper's four
//! categories:
//!
//! 1. induction variables whose update is a polynomial of degree ≤ 2;
//! 2. accumulative / maximum / minimum variables (reductions);
//! 3. variables set in the loop but not used until after it;
//! 4. variables set in every iteration before any use.
//!
//! Anything else must be communicated between cores and is demoted to a
//! shared memory location by the compiler.

use crate::liveness::{live_out_of_loop, loop_carried_regs, Liveness};
use helix_ir::cfg::{Dominators, NaturalLoop};
use helix_ir::{BinOp, Graph, Inst, InstSite, Operand, Reg};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Why a register's value can be re-computed locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictableKind {
    /// First-order induction: `r += c` every iteration (category i).
    InductionAffine {
        /// Per-iteration increment.
        step: i64,
    },
    /// Second-order induction: `r += s` where `s` is itself affine
    /// (category i, degree 2).
    InductionPoly2,
    /// Reduction through an associative, commutative operation
    /// (category ii).
    Reduction {
        /// The combining operation.
        op: BinOp,
    },
    /// Set in the loop, never read in the loop (category iii).
    NotUsedInLoop,
    /// Set before any use in every iteration that uses it (category iv).
    SetBeforeUse,
}

/// Classification of one register with respect to a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegClass {
    /// The register.
    pub reg: Reg,
    /// Value flows from one iteration to the next.
    pub carried: bool,
    /// Value is consumed after the loop.
    pub live_out: bool,
    /// How it can be re-computed, or `None` if it must be communicated.
    pub predictable: Option<PredictableKind>,
}

impl RegClass {
    /// Whether the register requires core-to-core communication.
    pub fn must_communicate(&self) -> bool {
        self.predictable.is_none()
    }
}

/// Operations accepted as reductions.
fn is_reduction_op(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add
            | BinOp::FAdd
            | BinOp::Mul
            | BinOp::FMul
            | BinOp::MinI
            | BinOp::MaxI
            | BinOp::FMin
            | BinOp::FMax
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
    )
}

/// Classify every loop-carried or live-out register of `lp`.
pub fn classify_registers(graph: &Graph, lp: &NaturalLoop) -> Vec<RegClass> {
    let dom = Dominators::compute(graph, graph.entry);
    let carried = loop_carried_regs(graph, lp);
    let live_out = live_out_of_loop(graph, lp);
    let loop_local = Liveness::loop_local(graph, lp);

    // Gather per-register in-loop defs and uses.
    let mut defs: BTreeMap<Reg, Vec<(InstSite, Inst)>> = BTreeMap::new();
    let mut uses: BTreeMap<Reg, Vec<InstSite>> = BTreeMap::new();
    for &b in &lp.blocks {
        for (idx, inst) in graph.block(b).insts.iter().enumerate() {
            let site = InstSite {
                block: b,
                index: idx,
            };
            for u in inst.uses() {
                uses.entry(u).or_default().push(site);
            }
            if let Some(d) = inst.def() {
                defs.entry(d).or_default().push((site, inst.clone()));
            }
        }
        if let Some(u) = graph.block(b).term.uses() {
            uses.entry(u).or_default().push(InstSite {
                block: b,
                index: graph.block(b).insts.len(),
            });
        }
    }

    let affine_step = |r: Reg| -> Option<i64> {
        let ds = defs.get(&r)?;
        if ds.len() != 1 {
            return None;
        }
        let (site, inst) = &ds[0];
        // Must execute every iteration: its block dominates every latch.
        if !lp.latches.iter().all(|&l| dom.dominates(site.block, l)) {
            return None;
        }
        match inst {
            Inst::Bin {
                op: BinOp::Add,
                lhs: Operand::Reg(a),
                rhs: Operand::Imm(v),
                dst,
            } if *a == *dst && *a == r => Some(v.as_int()),
            Inst::Bin {
                op: BinOp::Add,
                lhs: Operand::Imm(v),
                rhs: Operand::Reg(a),
                dst,
            } if *a == *dst && *a == r => Some(v.as_int()),
            Inst::Bin {
                op: BinOp::Sub,
                lhs: Operand::Reg(a),
                rhs: Operand::Imm(v),
                dst,
            } if *a == *dst && *a == r => Some(-v.as_int()),
            _ => None,
        }
    };

    let mut out = Vec::new();
    let all: BTreeSet<Reg> = carried.union(&live_out).copied().collect();
    for r in all {
        let is_carried = carried.contains(&r);
        let is_live_out = live_out.contains(&r);

        let predictable = if !is_carried {
            // No cross-iteration flow inside the loop: categories iii/iv.
            let used_in_loop = uses.get(&r).map(|u| !u.is_empty()).unwrap_or(false);
            Some(if used_in_loop {
                PredictableKind::SetBeforeUse
            } else {
                PredictableKind::NotUsedInLoop
            })
        } else if let Some(step) = affine_step(r) {
            Some(PredictableKind::InductionAffine { step })
        } else {
            poly2_or_reduction(r, &defs, &uses, lp, &dom, &affine_step)
        };

        let _ = &loop_local;
        out.push(RegClass {
            reg: r,
            carried: is_carried,
            live_out: is_live_out,
            predictable,
        });
    }
    out
}

fn poly2_or_reduction(
    r: Reg,
    defs: &BTreeMap<Reg, Vec<(InstSite, Inst)>>,
    uses: &BTreeMap<Reg, Vec<InstSite>>,
    lp: &NaturalLoop,
    dom: &Dominators,
    affine_step: &dyn Fn(Reg) -> Option<i64>,
) -> Option<PredictableKind> {
    let ds = defs.get(&r)?;
    if ds.len() != 1 {
        return None;
    }
    let (site, inst) = &ds[0];
    let (op, other) = match inst {
        Inst::Bin { op, lhs, rhs, dst } if *dst == r => {
            if *lhs == Operand::Reg(r) {
                (*op, *rhs)
            } else if *rhs == Operand::Reg(r) {
                (*op, *lhs)
            } else {
                return None;
            }
        }
        _ => return None,
    };
    // The only in-loop use of r must be the update itself.
    let use_sites = uses.get(&r).cloned().unwrap_or_default();
    let only_self_use = use_sites.iter().all(|s| s == site);

    // Second-order induction: r += s, s affine, executed every iteration.
    if op == BinOp::Add {
        if let Operand::Reg(s) = other {
            if affine_step(s).is_some()
                && lp.latches.iter().all(|&l| dom.dominates(site.block, l))
                && only_self_use
            {
                return Some(PredictableKind::InductionPoly2);
            }
        }
    }
    // Reduction: associative/commutative op, r used nowhere else in the
    // loop, and the other operand independent of r.
    if is_reduction_op(op) && only_self_use {
        let other_indep = match other {
            Operand::Imm(_) => true,
            Operand::Reg(o) => o != r,
        };
        if other_indep {
            return Some(PredictableKind::Reduction { op });
        }
    }
    None
}

/// Summary of communication demand before/after exploiting predictability
/// (the Fig. 3 experiment, per loop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommunicationDemand {
    /// Registers a naive scheme would forward every iteration.
    pub naive_regs: usize,
    /// Registers still requiring communication after re-computation.
    pub remaining_regs: usize,
    /// Memory locations (shared access sites) requiring communication.
    pub memory_sites: usize,
}

impl CommunicationDemand {
    /// Fraction of the naive register traffic that re-computation removes.
    pub fn register_reduction(&self) -> f64 {
        if self.naive_regs == 0 {
            return 0.0;
        }
        1.0 - (self.remaining_regs as f64 / self.naive_regs as f64)
    }
}

/// Compute the Fig. 3 communication demand for a loop.
pub fn communication_demand(
    classes: &[RegClass],
    shared_memory_sites: usize,
) -> CommunicationDemand {
    CommunicationDemand {
        naive_regs: classes.len(),
        remaining_regs: classes.iter().filter(|c| c.must_communicate()).count(),
        memory_sites: shared_memory_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::cfg::LoopForest;
    use helix_ir::{AddrExpr, Program, ProgramBuilder, Ty};

    fn classify(p: &Program) -> Vec<RegClass> {
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest
            .loops
            .iter()
            .min_by_key(|n| n.lp.header)
            .unwrap()
            .lp
            .clone();
        classify_registers(&p.graph, &lp)
    }

    fn class_of(classes: &[RegClass], r: Reg) -> &RegClass {
        classes.iter().find(|c| c.reg == r).expect("classified")
    }

    #[test]
    fn loop_counter_is_affine_induction() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("o", 64, Ty::I64);
        let mut counter = None;
        b.counted_loop(0, 10, 2, |b, i| {
            counter = Some(i);
            b.store(i, AddrExpr::region(out, 0), Ty::I64);
        });
        let p = b.finish();
        let classes = classify(&p);
        let c = class_of(&classes, counter.unwrap());
        assert_eq!(
            c.predictable,
            Some(PredictableKind::InductionAffine { step: 2 })
        );
    }

    #[test]
    fn sum_is_reduction() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("o", 64, Ty::I64);
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            let x = b.reg();
            b.bin(x, BinOp::Mul, i, i);
            b.bin(acc, BinOp::Add, acc, x);
        });
        b.store(acc, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let classes = classify(&p);
        let c = class_of(&classes, acc);
        assert!(c.carried && c.live_out);
        assert_eq!(
            c.predictable,
            Some(PredictableKind::Reduction { op: BinOp::Add })
        );
    }

    #[test]
    fn max_is_reduction() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("o", 64, Ty::I64);
        let m = b.reg();
        b.const_i(m, i64::MIN);
        b.counted_loop(0, 10, 1, |b, i| {
            b.bin(m, BinOp::MaxI, m, i);
        });
        b.store(m, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let c = classify(&p);
        assert_eq!(
            class_of(&c, m).predictable,
            Some(PredictableKind::Reduction { op: BinOp::MaxI })
        );
    }

    #[test]
    fn second_order_induction_recognized() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("o", 64, Ty::I64);
        let [tri, step] = b.regs();
        b.const_i(tri, 0);
        b.const_i(step, 0);
        b.counted_loop(0, 10, 1, |b, _i| {
            b.bin(tri, BinOp::Add, tri, step); // tri += step (step affine)
            b.bin(step, BinOp::Add, step, 1i64); // step += 1
        });
        b.store(tri, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let classes = classify(&p);
        assert_eq!(
            class_of(&classes, step).predictable,
            Some(PredictableKind::InductionAffine { step: 1 })
        );
        assert_eq!(
            class_of(&classes, tri).predictable,
            Some(PredictableKind::InductionPoly2)
        );
    }

    #[test]
    fn conditionally_updated_state_not_predictable() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("o", 64, Ty::I64);
        let state = b.reg();
        b.const_i(state, 1);
        b.counted_loop(0, 10, 1, |b, i| {
            let c = b.reg();
            b.bin(c, BinOp::And, i, 1i64);
            b.if_then(c, |b| {
                // state = state * 3 + 1 under a data-dependent condition:
                // genuinely unpredictable.
                b.bin(state, BinOp::Mul, state, 3i64);
                b.bin(state, BinOp::Add, state, 1i64);
            });
        });
        b.store(state, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let classes = classify(&p);
        let c = class_of(&classes, state);
        assert!(c.carried);
        assert!(c.must_communicate());
    }

    #[test]
    fn live_out_only_var_is_category_three() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("o", 64, Ty::I64);
        let last = b.reg();
        b.const_i(last, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            let c = b.reg();
            b.bin(c, BinOp::And, i, 1i64);
            b.if_then(c, |b| {
                b.copy(last, i); // set, never read in loop
            });
        });
        b.store(last, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let classes = classify(&p);
        let c = class_of(&classes, last);
        assert!(!c.carried && c.live_out);
        assert_eq!(c.predictable, Some(PredictableKind::NotUsedInLoop));
    }

    #[test]
    fn set_every_iteration_is_category_four() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("o", 64, Ty::I64);
        let cur = b.reg();
        b.const_i(cur, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            let h = b.reg();
            b.bin(h, BinOp::Mul, i, 7i64);
            b.copy(cur, h); // set every iteration...
            b.bin(h, BinOp::Add, cur, 1i64); // ...then used
        });
        b.store(cur, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let classes = classify(&p);
        let c = class_of(&classes, cur);
        assert!(!c.carried && c.live_out);
        assert_eq!(c.predictable, Some(PredictableKind::SetBeforeUse));
    }

    #[test]
    fn communication_demand_reduction() {
        let classes = vec![
            RegClass {
                reg: Reg(0),
                carried: true,
                live_out: false,
                predictable: Some(PredictableKind::InductionAffine { step: 1 }),
            },
            RegClass {
                reg: Reg(1),
                carried: true,
                live_out: true,
                predictable: None,
            },
            RegClass {
                reg: Reg(2),
                carried: true,
                live_out: false,
                predictable: Some(PredictableKind::Reduction { op: BinOp::Add }),
            },
        ];
        let d = communication_demand(&classes, 4);
        assert_eq!(d.naive_regs, 3);
        assert_eq!(d.remaining_regs, 1);
        assert_eq!(d.memory_sites, 4);
        assert!((d.register_reduction() - 2.0 / 3.0).abs() < 1e-9);
    }
}
