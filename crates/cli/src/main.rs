//! `helix` — the scenario runner.
//!
//! Every subcommand operates on declarative scenario files
//! (`scenarios/*.toml`); see `docs/SCENARIOS.md` for the full spec
//! schema (including multi-nest scenarios) and the README's "Adding a
//! scenario" section for a quick tour. `run`, `check`, `campaign`, and
//! `diff` are thin clients of the unified [`helix_rc::api`] surface —
//! the same requests can be executed in-process or submitted to a
//! resident `helix serve` instance (see `docs/SERVICE.md`).
//!
//! ```text
//! helix run scenarios/175.vpr.toml          # compile + simulate, print summary
//! helix run scenarios/ --out-dir reports/   # run all, write per-scenario JSON
//! helix check scenarios/                    # parse + validate + generate
//! helix list scenarios/                     # one line per scenario
//! helix smoke scenarios/ --cores 8          # CI gate: every spec must run clean
//! helix campaign campaigns/smoke.toml       # cross-scenario sweep from one config
//! helix explore --seed 7 --budget 100       # property-fuzz generated scenarios
//! helix serve --socket /tmp/helix.sock      # resident campaign service
//! helix submit --socket /tmp/helix.sock campaigns/smoke.toml
//! helix export scenarios/                   # (re)write the built-in specs
//! ```

use helix_rc::api::{self, CampaignSource, Request, Response, RunOptions, SpecSource};
use helix_rc::explore::ExploreOptions;
use helix_rc::resilient::FaultPlan;
use helix_rc::scenario::ScenarioReport;
use helix_rc::service::{serve, submit, ServeOptions};
use helix_rc::workloads::{builtin_specs, Scale, ScenarioSpec};
use helix_rc::HelixError;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
helix — declarative scenario runner for the HELIX-RC reproduction

USAGE:
    helix run      <spec.toml|dir>... [--cores N] [--fuel N] [--full]
                   [--out FILE | --out-dir DIR] [--quiet]
                   [--journal DIR] [--resume] [--attribution]
    helix check    <spec.toml|dir>...
    helix list     <dir>...
    helix smoke    <dir>... [--cores N] [--fuel N] [--full] [--out-dir DIR]
    helix campaign <campaign.toml> [--full] [--out FILE] [--quiet]
                   [--journal DIR] [--resume] [--lanes N]
                   [--retries N] [--cycle-budget N] [--wall-budget-ms N]
                   [--chaos-seed N] [--chaos-panics N] [--chaos-stalls N]
                   [--chaos-blowouts N] [--chaos-stall-ms N] [--chaos-transient]
    helix explore  [--seed N] [--budget N] [--cores N] [--fuel N]
                   [--out FILE] [--export-dir DIR] [--quiet]
    helix serve    --socket PATH [--journal DIR] [--workers N]
    helix submit   --socket PATH <spec.toml|campaign.toml>
                   [--full] [--out FILE] [--quiet] [--lanes N]
    helix submit   --socket PATH --status | --shutdown
    helix diff     <a.json> <b.json>
    helix export   <dir>
    helix help

COMMANDS:
    run      Compile + simulate each scenario on its configured machines
             and print a summary; JSON reports go to --out / --out-dir.
             With --journal [--resume], whole scenario reports are
             cached and answered without simulating.
    check    Parse, validate, and generate each scenario without
             simulating (fast schema check).
    list     Show name, kind, size, and description of each scenario.
    smoke    Run every scenario end-to-end, report each failure, and
             exit non-zero if any failed — the CI gate that keeps
             committed specs runnable.
    campaign Run a cross-scenario sweep campaign: one TOML config names
             scenario specs (globs) plus a machine/compiler grid, cells
             run in parallel behind the resilient layer (panic isolation,
             budgets, retries), and the aggregated paper-style tables are
             printed (JSON report via --out). Failed cells are enumerated
             in the report and exit code 3 flags them. See
             docs/CAMPAIGNS.md.
    explore  Property-driven scenario fuzzing: generate --budget valid
             specs from --seed, run each at smoke scale through the
             differential-oracle battery (engine agreement, fast-forward
             and lane exactness, coverage sums, Amdahl bounds), shrink
             any failure or frontier extreme to a minimal runnable TOML,
             and emit a deterministic JSON report (same seed + budget =>
             byte-identical). Exit 1 if any oracle fired. See
             docs/EXPLORE.md.
    serve    Run the resident campaign service on a Unix-domain socket:
             concurrent submissions, a bounded worker pool, and a shared
             journal that answers repeat submissions without simulating.
             See docs/SERVICE.md.
    submit   Submit a scenario or campaign file to a running service
             (auto-detected by the presence of a [grid] section) and
             print the response; --status / --shutdown probe or stop
             the service.
    diff     Compare two report JSON files: schema versions first (a
             mismatch is named), then byte-for-byte with the differing
             region printed. 'diff == empty' is the cache-hit /
             determinism check.
    export   Write the built-in scenario specs (SPEC stand-ins + novel
             workloads) into a directory as TOML.

OPTIONS:
    --cores N          Override the spec's core count (run/smoke/explore)
    --fuel N           Override the spec's simulation cycle budget
                       (run/smoke/explore)
    --seed N           Generator stream seed (explore; default 0)
    --budget N         Number of generated specs to examine (explore;
                       default 50)
    --export-dir DIR   Also write each shrunk failure/frontier TOML as a
                       runnable scenario file into DIR (explore)
    --full             Use the Full problem scale (default: Test)
    --out FILE         Write the JSON report here
    --out-dir DIR      Write one <name>.report.json per scenario
    --quiet            One line per scenario instead of full tables
    --journal DIR      Journal completed work into DIR (content-addressed;
                       default <campaign>.journal when --resume is given
                       without --journal, <socket>.journal under serve)
    --resume           Answer journaled entries instead of re-running them
    --lanes N          Batch up to N simulations of a scenario in lockstep
                       per session, sharing one compile/decode (campaign/
                       submit; reports are byte-identical to --lanes 1)
    --attribution      Attach the per-stall-cause cycle breakdown (the
                       Fig. 12 buckets) to every run row in the report
                       (run/smoke/submit-scenario)
    --retries N        Override [resilience] max_retries
    --cycle-budget N   Override [resilience] cycle_budget (simulated cycles)
    --wall-budget-ms N Override [resilience] wall_budget_ms
    --socket PATH      Unix-domain socket of the service (serve/submit)
    --workers N        Worker pool size of the service (default: CPU count)
    --status           submit: ask the service for its live counters
    --shutdown         submit: ask the service to drain and exit
    --chaos-seed N     Enable the chaos harness with this seed
    --chaos-panics N   Cells that panic under chaos (default 0)
    --chaos-stalls N   Cells that stall under chaos (default 0)
    --chaos-blowouts N Cells that run with a tiny cycle budget (default 0)
    --chaos-stall-ms N Stall duration in milliseconds (default 50)
    --chaos-transient  Inject each fault only on a cell's first attempt

EXIT CODES:
    0  success        2  usage error       1  hard failure
    3  campaign completed with failed cells (see the failures section)
";

fn fail(message: impl AsRef<str>) -> ExitCode {
    eprintln!("helix: {}", message.as_ref());
    ExitCode::FAILURE
}

/// Caller misuse (unknown flag or command) gets the documented usage
/// exit code, distinct from hard failures.
fn fail_usage(message: impl AsRef<str>) -> ExitCode {
    eprintln!("helix: {}", message.as_ref());
    ExitCode::from(2)
}

/// Render a structured error the way the CLI always has: the file (or
/// failing scenario) first, then the message.
fn render_error(e: &HelixError) -> String {
    match (&e.file, &e.field) {
        (None, Some(field)) => format!("{field}: {e}"),
        _ => e.to_string(),
    }
}

/// Print a typed error response and map it to the documented exit
/// codes (usage errors exit 2, everything else 1).
fn fail_response(e: &HelixError) -> ExitCode {
    eprintln!("helix: {}", render_error(e));
    ExitCode::from(e.kind.exit_code())
}

/// Expand files/directories into a sorted list of `.toml` spec paths.
fn collect_spec_files(inputs: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for input in inputs {
        let path = Path::new(input);
        if path.is_dir() {
            let mut in_dir: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory '{input}': {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
                .collect();
            in_dir.sort();
            if in_dir.is_empty() {
                return Err(format!("no .toml scenarios in '{input}'"));
            }
            files.extend(in_dir);
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("no such file or directory: '{input}'"));
        }
    }
    if files.is_empty() {
        return Err("no scenario files given".into());
    }
    Ok(files)
}

fn load_spec(path: &Path) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
    ScenarioSpec::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[derive(Debug, Default)]
struct Options {
    inputs: Vec<String>,
    cores: Option<usize>,
    fuel: Option<u64>,
    full: bool,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    seed: Option<u64>,
    budget: Option<usize>,
    export_dir: Option<PathBuf>,
    quiet: bool,
    journal: Option<PathBuf>,
    resume: bool,
    lanes: Option<usize>,
    attribution: bool,
    retries: Option<i64>,
    cycle_budget: Option<i64>,
    wall_budget_ms: Option<i64>,
    socket: Option<PathBuf>,
    workers: Option<usize>,
    status: bool,
    shutdown: bool,
    chaos_seed: Option<u64>,
    chaos_panics: usize,
    chaos_stalls: usize,
    chaos_blowouts: usize,
    chaos_stall_ms: u64,
    chaos_transient: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        chaos_stall_ms: 50,
        ..Options::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--cores" => {
                let cores: usize = value_of("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?;
                if cores == 0 {
                    return Err("--cores must be >= 1".into());
                }
                opts.cores = Some(cores);
            }
            "--fuel" => {
                let fuel: u64 = value_of("--fuel")?
                    .parse()
                    .map_err(|e| format!("--fuel: {e}"))?;
                if fuel == 0 {
                    return Err("--fuel must be >= 1".into());
                }
                opts.fuel = Some(fuel);
            }
            "--full" => opts.full = true,
            "--out" => opts.out = Some(PathBuf::from(value_of("--out")?)),
            "--out-dir" => opts.out_dir = Some(PathBuf::from(value_of("--out-dir")?)),
            "--seed" => {
                opts.seed = Some(
                    value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--budget" => {
                let budget: usize = value_of("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                if budget == 0 {
                    return Err("--budget must be >= 1".into());
                }
                opts.budget = Some(budget);
            }
            "--export-dir" => opts.export_dir = Some(PathBuf::from(value_of("--export-dir")?)),
            "--quiet" => opts.quiet = true,
            "--journal" => opts.journal = Some(PathBuf::from(value_of("--journal")?)),
            "--resume" => opts.resume = true,
            "--lanes" => {
                let lanes: usize = value_of("--lanes")?
                    .parse()
                    .map_err(|e| format!("--lanes: {e}"))?;
                if lanes == 0 {
                    return Err("--lanes must be >= 1".into());
                }
                opts.lanes = Some(lanes);
            }
            "--attribution" => opts.attribution = true,
            "--retries" => {
                opts.retries = Some(
                    value_of("--retries")?
                        .parse()
                        .map_err(|e| format!("--retries: {e}"))?,
                );
            }
            "--cycle-budget" => {
                opts.cycle_budget = Some(
                    value_of("--cycle-budget")?
                        .parse()
                        .map_err(|e| format!("--cycle-budget: {e}"))?,
                );
            }
            "--wall-budget-ms" => {
                opts.wall_budget_ms = Some(
                    value_of("--wall-budget-ms")?
                        .parse()
                        .map_err(|e| format!("--wall-budget-ms: {e}"))?,
                );
            }
            "--socket" => opts.socket = Some(PathBuf::from(value_of("--socket")?)),
            "--workers" => {
                let workers: usize = value_of("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
                opts.workers = Some(workers);
            }
            "--status" => opts.status = true,
            "--shutdown" => opts.shutdown = true,
            "--chaos-seed" => {
                opts.chaos_seed = Some(
                    value_of("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                );
            }
            "--chaos-panics" => {
                opts.chaos_panics = value_of("--chaos-panics")?
                    .parse()
                    .map_err(|e| format!("--chaos-panics: {e}"))?;
            }
            "--chaos-stalls" => {
                opts.chaos_stalls = value_of("--chaos-stalls")?
                    .parse()
                    .map_err(|e| format!("--chaos-stalls: {e}"))?;
            }
            "--chaos-blowouts" => {
                opts.chaos_blowouts = value_of("--chaos-blowouts")?
                    .parse()
                    .map_err(|e| format!("--chaos-blowouts: {e}"))?;
            }
            "--chaos-stall-ms" => {
                opts.chaos_stall_ms = value_of("--chaos-stall-ms")?
                    .parse()
                    .map_err(|e| format!("--chaos-stall-ms: {e}"))?;
            }
            "--chaos-transient" => opts.chaos_transient = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            other => opts.inputs.push(other.to_string()),
        }
    }
    Ok(opts)
}

impl Options {
    fn scale(&self) -> Scale {
        if self.full {
            Scale::Full
        } else {
            Scale::Test
        }
    }

    fn faults(&self) -> Option<FaultPlan> {
        self.chaos_seed.map(|seed| FaultPlan {
            seed,
            panics: self.chaos_panics,
            stalls: self.chaos_stalls,
            blowouts: self.chaos_blowouts,
            stall_ms: self.chaos_stall_ms,
            transient: self.chaos_transient,
        })
    }

    /// The unified [`RunOptions`] these CLI flags describe.
    fn api_options(&self) -> RunOptions {
        RunOptions {
            scale: self.full.then_some(Scale::Full),
            cores: self.cores,
            fuel: self.fuel,
            max_retries: self.retries,
            cycle_budget: self.cycle_budget,
            wall_budget_ms: self.wall_budget_ms,
            journal: self.journal.clone(),
            resume: self.resume,
            faults: self.faults(),
            lanes: self.lanes,
            attribution: self.attribution,
        }
    }
}

fn print_report(report: &ScenarioReport, quiet: bool) {
    if quiet {
        let helix = report.runs.iter().rev().find_map(|r| {
            r.speedup_vs_sequential
                .filter(|_| !r.config.starts_with("seq"))
        });
        println!(
            "{:<12} {} cores={} coverage={:.0}% plans={}{}",
            report.scenario,
            report.compiler,
            report.cores,
            100.0 * report.coverage,
            report.plans,
            helix
                .map(|s| format!(" speedup={s:.2}x"))
                .unwrap_or_default()
        );
        return;
    }
    println!(
        "\n{} [{}] — {} @ {} cores, coverage {:.1}%, {} parallel loop(s)",
        report.scenario,
        report.kind,
        report.compiler,
        report.cores,
        100.0 * report.coverage,
        report.plans
    );
    for row in report.runs.iter().chain(&report.sweep) {
        let speedup = row
            .speedup_vs_sequential
            .map(|s| format!("{s:6.2}x"))
            .unwrap_or_else(|| "      -".into());
        println!(
            "  {:<18} {:>12} cycles  {speedup}  {:>10.0} cyc/s  ({:.3}s)",
            row.config,
            row.cycles,
            row.cycles_per_sec(),
            row.wall_secs
        );
    }
    if !report.nests.is_empty() {
        println!("  per-nest breakdown:");
        for nest in &report.nests {
            println!(
                "    {:<14} weight {:>5.1}%  glue {:>5.1}%  coverage {:>5.1}%  {} plan(s)  {:>6.2}x",
                nest.name,
                100.0 * nest.weight,
                100.0 * nest.glue_weight,
                100.0 * nest.coverage,
                nest.plans,
                nest.speedup
            );
        }
    }
}

fn cmd_run(opts: &Options) -> Result<ExitCode, String> {
    let files = collect_spec_files(&opts.inputs)?;
    if opts.out.is_some() && files.len() != 1 {
        return Err("--out requires exactly one scenario (use --out-dir for many)".into());
    }
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create '{}': {e}", dir.display()))?;
    }
    for file in &files {
        let response = api::execute(Request::RunScenario {
            source: SpecSource::Path(file.clone()),
            options: opts.api_options(),
        });
        let (json, scenario_name) = match &response {
            Response::Scenario {
                json,
                cached,
                report,
            } => {
                let name = match report {
                    Some(report) => {
                        print_report(report, opts.quiet);
                        report.scenario.clone()
                    }
                    // Journal hit: the report text is all we have (and
                    // all we need — nothing was simulated).
                    None => {
                        let name = file
                            .file_stem()
                            .map(|s| s.to_string_lossy().into_owned())
                            .unwrap_or_else(|| "scenario".into());
                        println!("{name}: report answered from the journal");
                        name
                    }
                };
                if *cached && !opts.quiet {
                    println!("  (journal hit — no simulation)");
                }
                (json.clone(), name)
            }
            Response::Error(e) => return Ok(fail_response(e)),
            other => return Err(format!("unexpected response: {other:?}")),
        };
        let out_path = opts.out.clone().or_else(|| {
            opts.out_dir
                .as_ref()
                .map(|dir| dir.join(format!("{scenario_name}.report.json")))
        });
        if let Some(path) = out_path {
            std::fs::write(&path, json)
                .map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
            if !opts.quiet {
                println!("  report -> {}", path.display());
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(opts: &Options) -> Result<ExitCode, String> {
    let files = collect_spec_files(&opts.inputs)?;
    for file in &files {
        let response = api::execute(Request::Check {
            source: SpecSource::Path(file.clone()),
            scale: opts.scale(),
        });
        match response {
            Response::Checked {
                name,
                regions,
                phases,
                insts,
            } => {
                println!(
                    "ok {name:<12} ({regions} regions, {phases} phases, {insts} static insts)"
                );
            }
            Response::Error(e) => return Ok(fail_response(&e)),
            other => return Err(format!("unexpected response: {other:?}")),
        }
    }
    println!("{} scenario(s) valid", files.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(opts: &Options) -> Result<(), String> {
    let files = collect_spec_files(&opts.inputs)?;
    for file in &files {
        let spec = load_spec(file)?;
        // Multi-nest scenarios list their nests; the classic
        // single-pipeline form counts as one.
        let nests = spec.nests.len().max(1);
        let kinds = spec.dist_kinds();
        let dists = if kinds.is_empty() {
            // Fixed per-iteration work: no distribution in play.
            "-".to_string()
        } else {
            kinds.join(",")
        };
        println!(
            "{:<12} {:<4} n={:<5} nests={:<2} dists={:<12} {}",
            spec.name,
            spec.kind.render(),
            spec.base_n,
            nests,
            dists,
            spec.description
        );
    }
    Ok(())
}

fn cmd_explore(opts: &Options) -> Result<ExitCode, String> {
    if !opts.inputs.is_empty() {
        return Err("explore takes no positional arguments (it generates its own specs)".into());
    }
    let defaults = ExploreOptions::default();
    let response = api::execute(Request::Explore {
        options: ExploreOptions {
            seed: opts.seed.unwrap_or(defaults.seed),
            budget: opts.budget.unwrap_or(defaults.budget),
            cores: opts.cores.unwrap_or(defaults.cores),
            fuel: opts.fuel.unwrap_or(defaults.fuel),
            export_dir: opts.export_dir.clone(),
        },
    });
    let (json, report) = match &response {
        Response::Explore { json, report, .. } => (json, report),
        Response::Error(e) => return Ok(fail_response(e)),
        other => return Err(format!("unexpected response: {other:?}")),
    };
    if let Some(report) = report {
        if !opts.quiet {
            println!(
                "explore seed={} budget={}: {} spec(s), {} oracle check(s), {} failure(s)",
                report.seed,
                report.budget,
                report.specs_run,
                report.oracle_checks,
                report.failures.len()
            );
            for f in &report.failures {
                println!(
                    "  FAIL [{}] #{} {}: {}",
                    f.oracle, f.index, f.spec, f.detail
                );
            }
            if let Some(hit) = &report.frontier.min_bound_frac {
                println!(
                    "  frontier min bound_frac {:.3} at #{} {}",
                    hit.value, hit.index, hit.spec
                );
            }
            if let Some(hit) = &report.frontier.max_comm_frac {
                println!(
                    "  frontier max comm_frac {:.3} at #{} {}",
                    hit.value, hit.index, hit.spec
                );
            }
            for inv in &report.frontier.inversions {
                println!(
                    "  inversion at #{} {}: v1 {:.2}x, v2 {:.2}x, helix-rc {:.2}x",
                    inv.index, inv.spec, inv.v1, inv.v2, inv.helix_rc
                );
            }
        }
    }
    if let Some(out) = &opts.out {
        std::fs::write(out, json).map_err(|e| format!("cannot write '{}': {e}", out.display()))?;
        if !opts.quiet {
            println!("report -> {}", out.display());
        }
    } else if opts.quiet {
        // Quiet with no --out still leaves the report on stdout, so
        // `helix explore --quiet > report.json` stays scriptable.
        print!("{json}");
    }
    Ok(ExitCode::from(response.exit_code()))
}

fn cmd_smoke(opts: &Options) -> Result<(), String> {
    let files = collect_spec_files(&opts.inputs)?;
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create '{}': {e}", dir.display()))?;
    }
    let mut failures = 0usize;
    for file in &files {
        let response = api::execute(Request::RunScenario {
            source: SpecSource::Path(file.clone()),
            options: opts.api_options(),
        });
        match response {
            Response::Scenario {
                json,
                report: Some(report),
                ..
            } => {
                print_report(&report, true);
                // Optionally collect the JSON reports in the same pass,
                // so CI doesn't have to simulate the suite twice.
                if let Some(dir) = &opts.out_dir {
                    let path = dir.join(format!("{}.report.json", report.scenario));
                    std::fs::write(&path, json)
                        .map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
                }
            }
            Response::Scenario { .. } => {
                // smoke never passes a journal, so this cannot happen;
                // count it rather than hide it if that ever changes.
                eprintln!(
                    "FAIL {}: unexpected journal-cached response",
                    file.display()
                );
                failures += 1;
            }
            Response::Error(e) => {
                eprintln!("FAIL {}: {}", file.display(), render_error(&e));
                failures += 1;
            }
            other => return Err(format!("unexpected response: {other:?}")),
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} scenario(s) failed", files.len()));
    }
    println!("smoke ok: {} scenario(s)", files.len());
    Ok(())
}

fn cmd_campaign(opts: &Options) -> Result<ExitCode, String> {
    // The grid comes from the campaign file; silently ignoring per-run
    // overrides would run a different sweep than the user asked for.
    if opts.cores.is_some() || opts.fuel.is_some() {
        return Err("campaign does not take --cores/--fuel: edit the campaign's [grid]".into());
    }
    if opts.out_dir.is_some() {
        return Err("campaign writes one aggregated report: use --out FILE".into());
    }
    let [input] = opts.inputs.as_slice() else {
        return Err("campaign takes exactly one campaign file".into());
    };
    let path = Path::new(input);
    let mut options = opts.api_options();
    if options.journal.is_none() && opts.resume {
        // --resume without --journal uses the campaign's sibling dir,
        // so "interrupt, re-run with --resume" needs no bookkeeping.
        options.journal = Some(PathBuf::from(format!("{}.journal", path.display())));
    }
    let t0 = std::time::Instant::now();
    let response = api::execute(Request::RunCampaign {
        source: CampaignSource::Path(path.to_path_buf()),
        options,
    });
    let wall = t0.elapsed().as_secs_f64();
    let (json, table, stats, report) = match response {
        Response::Campaign {
            json,
            table,
            stats,
            report: Some(report),
        } => (json, table, stats, report),
        Response::Error(e) => return Ok(fail_response(&e)),
        other => return Err(format!("unexpected response: {other:?}")),
    };
    if opts.quiet {
        for (scenario, speedup) in report.helix_speedups() {
            println!("{scenario:<12} helix-rc speedup {speedup:.2}x");
        }
        for failure in &report.failures {
            println!("FAILED {failure}");
        }
    } else {
        println!("{table}");
    }
    eprintln!(
        "campaign '{}': {} scenario(s), {} row(s){}{} in {wall:.1}s",
        report.name,
        report.scenarios.len(),
        report.rows.len(),
        if report.failures.is_empty() {
            String::new()
        } else {
            format!(", {} FAILED cell(s)", report.failures.len())
        },
        if stats.journal_hits > 0 {
            format!(
                ", {} of {} cell(s) from the journal",
                stats.journal_hits, stats.cells
            )
        } else {
            String::new()
        }
    );
    if let Some(out) = &opts.out {
        std::fs::write(out, json).map_err(|e| format!("cannot write '{}': {e}", out.display()))?;
        eprintln!("report -> {}", out.display());
    }
    Ok(if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(api::EXIT_CELL_FAILURES)
    })
}

fn cmd_serve(opts: &Options) -> Result<ExitCode, String> {
    if !opts.inputs.is_empty() {
        return Err("serve takes no positional arguments".into());
    }
    let socket = opts
        .socket
        .clone()
        .ok_or("serve needs --socket PATH (e.g. --socket /tmp/helix.sock)")?;
    let mut serve_options = ServeOptions::new(socket);
    if let Some(journal) = &opts.journal {
        serve_options.journal = journal.clone();
    }
    if let Some(workers) = opts.workers {
        serve_options.workers = workers;
    }
    match serve(&serve_options) {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => Ok(fail_response(&e)),
    }
}

fn cmd_submit(opts: &Options) -> Result<ExitCode, String> {
    let socket = opts
        .socket
        .clone()
        .ok_or("submit needs --socket PATH of a running `helix serve`")?;
    let request = if opts.status {
        Request::Status
    } else if opts.shutdown {
        Request::Shutdown
    } else {
        let [input] = opts.inputs.as_slice() else {
            return Err("submit takes exactly one scenario or campaign file".into());
        };
        let path = Path::new(input);
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{input}': {e}"))?;
        // Campaign files are the ones with a machine/compiler grid;
        // resolve their scenario patterns locally so the server never
        // touches this client's filesystem.
        if text.lines().any(|l| l.trim() == "[grid]") {
            let source = api::inline_campaign_source(path).map_err(|e| render_error(&e))?;
            Request::RunCampaign {
                source,
                options: opts.api_options(),
            }
        } else {
            Request::RunScenario {
                source: SpecSource::Inline(text),
                options: opts.api_options(),
            }
        }
    };
    let response = submit(&socket, &request).map_err(|e| render_error(&e))?;
    match &response {
        Response::Campaign {
            json, table, stats, ..
        } => {
            if !opts.quiet {
                println!("{table}");
            }
            println!(
                "cells={} journal_hits={} simulated={} failures={}",
                stats.cells, stats.journal_hits, stats.simulated, stats.failed
            );
            if stats.fully_cached() {
                println!("(all cells answered from the journal)");
            }
            if let Some(out) = &opts.out {
                std::fs::write(out, json)
                    .map_err(|e| format!("cannot write '{}': {e}", out.display()))?;
                eprintln!("report -> {}", out.display());
            }
        }
        Response::Scenario { json, cached, .. } => {
            if let Some(out) = &opts.out {
                std::fs::write(out, json)
                    .map_err(|e| format!("cannot write '{}': {e}", out.display()))?;
                eprintln!("report -> {}", out.display());
            } else if !opts.quiet {
                print!("{json}");
            }
            if *cached {
                println!("(report answered from the journal)");
            }
        }
        Response::Status(status) => {
            println!(
                "workers={} requests={} inflight={} cells={} journal_hits={} simulated={}",
                status.workers,
                status.requests,
                status.inflight,
                status.cells,
                status.journal_hits,
                status.simulated
            );
        }
        Response::ShuttingDown => println!("service shutting down"),
        Response::Error(e) => return Ok(fail_response(e)),
        other => return Err(format!("unexpected response: {other:?}")),
    }
    Ok(ExitCode::from(response.exit_code()))
}

/// Compare two report files through [`api::diff_reports`]: a schema
/// version mismatch is named outright; otherwise byte-compare and print
/// the differing region (common prefix/suffix trimmed, long middles
/// capped).
fn cmd_diff(opts: &Options) -> Result<ExitCode, String> {
    let [a, b] = opts.inputs.as_slice() else {
        return Err("diff takes exactly two report files".into());
    };
    let read = |p: &String| {
        std::fs::read_to_string(Path::new(p)).map_err(|e| format!("cannot read '{p}': {e}"))
    };
    let (ta, tb) = (read(a)?, read(b)?);
    let response = api::execute(Request::Diff {
        a_name: a.clone(),
        a_text: ta,
        b_name: b.clone(),
        b_text: tb,
    });
    match response {
        Response::Diff { identical, detail } => {
            println!("{detail}");
            Ok(if identical {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Response::Error(e) => Ok(fail_response(&e)),
        other => Err(format!("unexpected response: {other:?}")),
    }
}

fn cmd_export(opts: &Options) -> Result<(), String> {
    let [dir] = opts.inputs.as_slice() else {
        return Err("export takes exactly one directory".into());
    };
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create '{}': {e}", dir.display()))?;
    let specs = builtin_specs();
    for spec in &specs {
        let path = dir.join(format!("{}.toml", spec.name));
        std::fs::write(&path, spec.to_toml())
            .map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    println!("{} scenario(s) exported", specs.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_options(rest) {
        Ok(opts) => opts,
        Err(e) => return fail_usage(e),
    };
    let result = match command.as_str() {
        "run" => cmd_run(&opts),
        "check" => cmd_check(&opts),
        "list" => cmd_list(&opts).map(|()| ExitCode::SUCCESS),
        "smoke" => cmd_smoke(&opts).map(|()| ExitCode::SUCCESS),
        "campaign" => cmd_campaign(&opts),
        "explore" => cmd_explore(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "diff" => cmd_diff(&opts),
        "export" => cmd_export(&opts).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return fail_usage(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}
