//! Workspace tests for the campaign subsystem: the committed campaign
//! files must stay loadable, the smoke campaign must run end-to-end
//! deterministically, grid cells must lower onto the exact experiment
//! calls, and the committed per-scenario speedup baseline must stay a
//! valid gate input.

mod common;

use common::{committed_scenario_files, repo_path};
use helix_rc::campaign::{load_campaign, run_campaign, run_campaign_with, CampaignRunOptions};
use helix_rc::experiment::{decoupling_lattice, ExperimentOptions};
use helix_rc::resilient::FaultPlan;
use helix_rc::workloads::{
    builtin_spec, workload_from_spec, CampaignExperiment, CampaignGrid, CampaignSpec, Scale,
};

/// The committed smoke campaign loads, covers the distribution-
/// stressing novel scenarios, runs end-to-end, and produces
/// byte-identical reports across runs (same campaign + seed).
#[test]
fn committed_smoke_campaign_runs_deterministically() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/smoke.toml")).expect("smoke campaign loads");
    assert_eq!(spec.name, "smoke");
    assert_eq!(spec.scale, Scale::Test);
    let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
    for required in [
        "930.zipf",
        "940.phase",
        "175.vpr",
        "950.twonest",
        "962.cov_lo",
        "970.pipeline",
        "1000.openloop",
        "1020.tailburst",
    ] {
        assert!(names.contains(&required), "smoke set missing {required}");
    }

    let a = run_campaign(&spec, &scenarios).expect("smoke campaign runs");
    let b = run_campaign(&spec, &scenarios).expect("smoke campaign runs twice");
    assert_eq!(a, b, "campaign reports must be deterministic");
    assert_eq!(a.to_json(), b.to_json(), "reports must be byte-identical");

    // Every scenario contributes a headline speedup for the CI gate.
    let speedups = a.helix_speedups();
    assert_eq!(speedups.len(), scenarios.len());
    for (name, speedup) in &speedups {
        assert!(
            *speedup > 0.5,
            "{name}: helix-rc catastrophically slow ({speedup:.2}x)"
        );
    }
}

/// End-to-end resilience on the committed smoke campaign: a chaos run
/// with injected panics completes with exactly those cells enumerated
/// as failures (never aborting the sweep), and resuming from its
/// journal reproduces the uninterrupted report byte for byte — the
/// property the CI chaos-smoke job pins at the CLI level.
#[test]
fn smoke_campaign_survives_chaos_and_resumes_byte_identically() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/smoke.toml")).expect("smoke campaign loads");
    let clean = run_campaign(&spec, &scenarios).expect("clean run");
    assert!(clean.failures.is_empty());

    let journal = std::env::temp_dir().join(format!(
        "helix-ws-chaos-{}-{}",
        std::process::id(),
        spec.name
    ));
    let _ = std::fs::remove_dir_all(&journal);
    let chaos_opts = CampaignRunOptions {
        journal: Some(journal.clone()),
        resume: false,
        faults: Some(FaultPlan {
            seed: 7,
            panics: 2,
            stalls: 0,
            blowouts: 0,
            stall_ms: 0,
            transient: false,
        }),
        ..CampaignRunOptions::default()
    };
    let chaos = run_campaign_with(&spec, &scenarios, &chaos_opts).expect("chaos run completes");
    assert_eq!(chaos.failures.len(), 2, "exactly the injected panics");
    assert!(chaos.rows.len() < clean.rows.len());

    let resume_opts = CampaignRunOptions {
        journal: Some(journal.clone()),
        resume: true,
        ..CampaignRunOptions::default()
    };
    let resumed = run_campaign_with(&spec, &scenarios, &resume_opts).expect("resume completes");
    assert!(resumed.failures.is_empty());
    assert_eq!(
        resumed.to_json(),
        clean.to_json(),
        "resumed report must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&journal);
}

/// The committed paper campaign must fan out over *every* committed
/// scenario spec (the property that makes new scenarios show up in the
/// sweep figures automatically) and name every experiment family.
#[test]
fn committed_paper_campaign_covers_every_committed_scenario() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/paper.toml")).expect("paper campaign loads");
    assert_eq!(
        scenarios.len(),
        committed_scenario_files().len(),
        "paper campaign must match every scenarios/*.toml"
    );
    assert_eq!(
        spec.grid.experiments.len(),
        CampaignExperiment::ALL.len(),
        "paper campaign must exercise every experiment family"
    );
    assert_eq!(spec.grid.cores, vec![16], "paper sweep runs at 16 cores");
    assert_eq!(spec.grid.sweep_cores, vec![2, 4, 8, 16]);
}

/// Campaign-grid lowering: a lattice cell must reproduce the exact
/// numbers of the equivalent hand-built `decoupling_lattice` call
/// (same MachineConfig/HccConfig per point, hence bit-equal speedups).
#[test]
fn lattice_cell_matches_direct_experiment_call() {
    let scenario = builtin_spec("900.chase").unwrap();
    let spec = CampaignSpec {
        name: "lattice-pin".into(),
        description: String::new(),
        scenarios: vec!["unused".into()],
        scale: Scale::Test,
        seed: 0,
        grid: CampaignGrid {
            cores: vec![4],
            sweep_cores: vec![],
            experiments: vec![CampaignExperiment::Lattice],
            nest_override: None,
        },
        resilience: Default::default(),
    };
    let report = run_campaign(&spec, std::slice::from_ref(&scenario)).unwrap();
    assert_eq!(report.rows.len(), 1);
    let row = &report.rows[0];

    let w = workload_from_spec(&scenario, Scale::Test).unwrap();
    let direct = decoupling_lattice(&w, 4, &ExperimentOptions::default()).unwrap();
    assert_eq!(row.points.len(), direct.len());
    for ((label, value), (point, speedup)) in row.points.iter().zip(&direct) {
        assert_eq!(label, point.label());
        assert_eq!(value, speedup, "{label}: campaign cell diverges");
    }
    assert_eq!(row.helix_speedup, Some(direct.last().unwrap().1));
}

/// The committed BENCH_scenarios.json baseline must stay a campaign
/// report with gateable generations rows for the smoke scenario set.
#[test]
fn committed_scenario_baseline_is_gateable() {
    let text = std::fs::read_to_string(repo_path("BENCH_scenarios.json"))
        .expect("BENCH_scenarios.json committed");
    assert!(text.contains("\"harness\": \"campaign\""));
    assert!(text.contains("\"name\": \"smoke\""));
    assert!(text.contains("\"experiment\": \"generations\""));
    for scenario in [
        "175.vpr",
        "900.chase",
        "910.bursty",
        "930.zipf",
        "940.phase",
        "950.twonest",
        "960.cov_hi",
        "961.cov_mid",
        "962.cov_lo",
        "970.pipeline",
        "1000.openloop",
        "1010.closedloop",
        "1020.tailburst",
    ] {
        assert!(
            text.contains(&format!("\"scenario\": \"{scenario}\"")),
            "baseline missing {scenario}"
        );
    }
    assert!(text.contains("\"helix_speedup\""));
    assert!(
        text.contains("\"derived\"") && text.contains("\"amdahl_bound\""),
        "baseline must carry the derived speedup-vs-coverage rows"
    );
}

/// The committed Full profile loads, runs at the Full scale over every
/// committed scenario, and anchors the derived metrics on generations.
#[test]
fn committed_full_campaign_profile_is_loadable() {
    let (spec, scenarios) =
        load_campaign(&repo_path("campaigns/full.toml")).expect("full campaign loads");
    assert_eq!(spec.name, "full");
    assert_eq!(spec.scale, Scale::Full);
    assert!(
        spec.grid
            .experiments
            .contains(&CampaignExperiment::Generations),
        "the Full profile must include generations (the derived-table anchor)"
    );
    assert_eq!(
        scenarios.len(),
        committed_scenario_files().len(),
        "full campaign must cover every scenarios/*.toml"
    );
    assert!(
        scenarios.iter().any(|s| !s.nests.is_empty()),
        "full campaign must exercise the multi-nest axis"
    );
}
