//! Conventional memory hierarchy: private L1s, a shared banked L2, DRAM,
//! and an invalidation-based coherence protocol with a configurable
//! cache-to-cache transfer latency (paper §6.1).
//!
//! This is a *timing* model: functional values live in the interpreter's
//! flat memory; the hierarchy tracks tags, sharers, and latencies.

use crate::config::{CacheConfig, MachineConfig};
use crate::dram::Dram;
use serde::{Deserialize, Serialize};

/// Tag-only set-associative timing cache with LRU replacement.
///
/// Slots are one flat `(line + 1, lru)` array — `assoc` entries per
/// set, allocated once and reused for the whole run, so probes and
/// fills are short scans of contiguous memory with no per-set vectors
/// to grow. Tags are stored biased by one so the empty sentinel is
/// zero and the multi-megabyte L2 array starts as untouched zero pages
/// instead of a written-out sentinel pattern.
#[derive(Debug, Clone)]
pub struct TimingCache {
    slots: Vec<(u64, u64)>, // (line addr + 1, lru); 0 = free
    n_sets: usize,
    assoc: usize,
    line: u64,
    clock: u64,
    /// `log2(line)` when the line size is a power of two (always, for
    /// the paper geometries), turning the per-access division into a
    /// shift.
    line_shift: Option<u32>,
    /// `n_sets - 1` when the set count is a power of two.
    set_mask: Option<usize>,
}

impl TimingCache {
    /// Build a cache from a geometry description.
    pub fn new(cfg: &CacheConfig) -> TimingCache {
        let lines = (cfg.size / cfg.line).max(1) as usize;
        let n_sets = (lines / cfg.assoc).max(1);
        TimingCache {
            slots: vec![(0, 0); n_sets * cfg.assoc],
            n_sets,
            assoc: cfg.assoc,
            line: cfg.line,
            clock: 0,
            line_shift: cfg
                .line
                .is_power_of_two()
                .then(|| cfg.line.trailing_zeros()),
            set_mask: n_sets.is_power_of_two().then(|| n_sets - 1),
        }
    }

    /// Build a cache from a geometry description, reusing a retired
    /// cache's slot array when its size matches. Observably identical
    /// to [`TimingCache::new`].
    pub fn renew(cfg: &CacheConfig, spare: TimingCache) -> TimingCache {
        let lines = (cfg.size / cfg.line).max(1) as usize;
        let n_sets = (lines / cfg.assoc).max(1);
        if spare.slots.len() != n_sets * cfg.assoc {
            return TimingCache::new(cfg);
        }
        let mut c = spare;
        c.slots.iter_mut().for_each(|s| *s = (0, 0));
        c.n_sets = n_sets;
        c.assoc = cfg.assoc;
        c.line = cfg.line;
        c.clock = 0;
        c.line_shift = cfg
            .line
            .is_power_of_two()
            .then(|| cfg.line.trailing_zeros());
        c.set_mask = n_sets.is_power_of_two().then(|| n_sets - 1);
        c
    }

    /// Line address of a byte address.
    pub fn line_of(&self, addr: u64) -> u64 {
        match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.line,
        }
    }

    fn set_slots(&mut self, line: u64) -> &mut [(u64, u64)] {
        let set = match self.set_mask {
            Some(mask) => (line as usize) & mask,
            None => (line as usize) % self.n_sets,
        };
        &mut self.slots[set * self.assoc..(set + 1) * self.assoc]
    }

    /// Probe for the line holding `addr`; refreshes LRU on hit.
    pub fn probe(&mut self, addr: u64) -> bool {
        let tag = self.line_of(addr) + 1;
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.set_slots(tag - 1).iter_mut().find(|(l, _)| *l == tag) {
            e.1 = clock;
            true
        } else {
            false
        }
    }

    /// Insert the line holding `addr`; returns the evicted line, if any.
    /// LRU clocks are unique, so filling the first free slot instead of
    /// appending changes nothing observable.
    pub fn insert(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_of(addr);
        let tag = line + 1;
        self.clock += 1;
        let clock = self.clock;
        let slots = self.set_slots(line);
        if let Some(e) = slots.iter_mut().find(|(l, _)| *l == tag) {
            e.1 = clock;
            return None;
        }
        if let Some(e) = slots.iter_mut().find(|(l, _)| *l == 0) {
            *e = (tag, clock);
            return None;
        }
        let idx = slots
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, lru))| *lru)
            .map(|(i, _)| i)
            .expect("full set");
        let victim = slots[idx].0 - 1;
        slots[idx] = (tag, clock);
        Some(victim)
    }

    /// Remove the line holding `addr` (coherence invalidation).
    pub fn remove_line(&mut self, line: u64) {
        let tag = line + 1;
        for e in self.set_slots(line) {
            if e.0 == tag {
                *e = (0, 0);
            }
        }
    }
}

/// Coherence directory entry.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: u64,
    /// Core holding the line modified, if any.
    dirty: Option<u8>,
}

impl DirEntry {
    const EMPTY: DirEntry = DirEntry {
        sharers: 0,
        dirty: None,
    };
}

/// Open-addressing map from line address to [`DirEntry`], replacing the
/// tree map on the simulator's every-memory-access path: one probe per
/// lookup, no per-entry allocation. Keys are stored biased by one so
/// zero is the empty sentinel and the table starts as untouched zero
/// pages. Entries whose sharer set empties are left zeroed rather than
/// removed — a zeroed entry is observably identical to an absent one.
#[derive(Debug)]
struct Directory {
    keys: Vec<u64>, // line address + 1; 0 = empty
    vals: Vec<DirEntry>,
    live: usize,
    mask: usize,
}

impl Directory {
    fn with_capacity_pow2(cap: usize) -> Directory {
        debug_assert!(cap.is_power_of_two());
        Directory {
            keys: vec![0; cap],
            vals: vec![DirEntry::EMPTY; cap],
            live: 0,
            mask: cap - 1,
        }
    }

    /// Fibonacci multiplicative hash over the line address.
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    /// Index of `key`'s slot, or of the empty slot where it belongs
    /// (`key` is the biased line address, never zero).
    fn probe(&self, key: u64) -> usize {
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key || k == 0 {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn get(&self, line: u64) -> Option<DirEntry> {
        let key = line + 1;
        let i = self.probe(key);
        (self.keys[i] == key).then(|| self.vals[i])
    }

    fn get_mut(&mut self, line: u64) -> Option<&mut DirEntry> {
        let key = line + 1;
        let i = self.probe(key);
        (self.keys[i] == key).then(|| &mut self.vals[i])
    }

    /// Entry for `line`, inserting a zeroed one when absent.
    fn entry_or_default(&mut self, line: u64) -> &mut DirEntry {
        if (self.live + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let key = line + 1;
        let i = self.probe(key);
        if self.keys[i] == 0 {
            self.keys[i] = key;
            self.vals[i] = DirEntry::EMPTY;
            self.live += 1;
        }
        &mut self.vals[i]
    }

    /// Empty the table, keeping its allocation. Stale values behind
    /// zeroed keys are unreachable (every probe checks the key first).
    fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = 0);
        self.live = 0;
    }

    fn grow(&mut self) {
        // Entries whose sharer set emptied are semantically absent
        // (`sharers == 0` implies `dirty == None`); purge them while
        // rehashing so the table tracks resident lines, not every line
        // ever touched. Live entries are bounded by total L1 capacity,
        // so so is the table.
        let bigger = Directory::with_capacity_pow2(self.keys.len() * 2);
        let old = std::mem::replace(self, bigger);
        for (k, v) in old.keys.into_iter().zip(old.vals) {
            if k != 0 && v.sharers != 0 {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = v;
                self.live += 1;
            }
        }
    }
}

impl Default for Directory {
    fn default() -> Self {
        Directory::with_capacity_pow2(1 << 12)
    }
}

/// Memory-system statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Misses serviced by another core's cache.
    pub c2c_transfers: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
}

/// The full conventional hierarchy.
#[derive(Debug)]
pub struct MemSystem {
    l1: Vec<TimingCache>,
    l2: TimingCache,
    l2_busy: Vec<u64>,
    l2_banks: usize,
    dram: Dram,
    dir: Directory,
    l1_lat: u32,
    l2_lat: u32,
    c2c: u32,
    /// L1 line size in bytes (for victim line-number → byte-address
    /// conversion on write-back).
    l1_line: u64,
    /// Statistics.
    pub stats: MemStats,
}

impl MemSystem {
    /// Build the hierarchy described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> MemSystem {
        MemSystem {
            l1: (0..cfg.cores).map(|_| TimingCache::new(&cfg.l1)).collect(),
            l2: TimingCache::new(&cfg.l2),
            l2_busy: vec![0; cfg.l2_banks.max(1)],
            l2_banks: cfg.l2_banks.max(1),
            dram: Dram::new(16, cfg.dram_row_hit, cfg.dram_row_miss),
            dir: Directory::default(),
            l1_lat: cfg.l1.hit_latency,
            l1_line: cfg.l1.line,
            l2_lat: cfg.l2.hit_latency,
            c2c: cfg.c2c_latency,
            stats: MemStats::default(),
        }
    }

    /// Build the hierarchy described by `cfg`, recycling a retired
    /// hierarchy's flat tables (L1/L2 slot arrays, coherence directory)
    /// where geometry permits. Observably identical to
    /// [`MemSystem::new`].
    pub fn renew(cfg: &MachineConfig, spare: MemSystem) -> MemSystem {
        let MemSystem {
            mut l1,
            l2,
            mut l2_busy,
            mut dir,
            ..
        } = spare;
        l1.truncate(cfg.cores);
        let l1: Vec<TimingCache> = l1
            .into_iter()
            .map(|s| TimingCache::renew(&cfg.l1, s))
            .chain(std::iter::repeat_with(|| TimingCache::new(&cfg.l1)))
            .take(cfg.cores)
            .collect();
        l2_busy.clear();
        l2_busy.resize(cfg.l2_banks.max(1), 0);
        dir.clear();
        MemSystem {
            l1,
            l2: TimingCache::renew(&cfg.l2, l2),
            l2_busy,
            l2_banks: cfg.l2_banks.max(1),
            dram: Dram::new(16, cfg.dram_row_hit, cfg.dram_row_miss),
            dir,
            l1_lat: cfg.l1.hit_latency,
            l1_line: cfg.l1.line,
            l2_lat: cfg.l2.hit_latency,
            c2c: cfg.c2c_latency,
            stats: MemStats::default(),
        }
    }

    /// Completion cycle of an access by `core` to `addr` at `now`.
    pub fn access(&mut self, core: usize, addr: u64, is_store: bool, now: u64) -> u64 {
        let line = self.l1[core].line_of(addr);
        let me = 1u64 << (core as u64 & 63);
        let entry = self.dir.entry_or_default(line);
        let others = entry.sharers & !me;

        if self.l1[core].probe(addr) {
            self.stats.l1_hits += 1;
            if is_store {
                if others != 0 {
                    // Upgrade: invalidate remote copies.
                    self.stats.c2c_transfers += 1;
                    let entry = self.dir.get(line).expect("present");
                    self.invalidate_others(line, core, entry);
                    let e = self.dir.entry_or_default(line);
                    e.sharers = me;
                    e.dirty = Some(core as u8);
                    return now + self.l1_lat as u64 + self.c2c as u64;
                }
                let e = self.dir.entry_or_default(line);
                e.sharers |= me;
                e.dirty = Some(core as u8);
            }
            return now + self.l1_lat as u64;
        }

        // L1 miss.
        self.stats.l1_misses += 1;
        let entry = self.dir.get(line).expect("present");
        let done = if entry.sharers & !me != 0 {
            // Another core holds the line: cache-to-cache transfer (the
            // conventional communication path the paper measures at
            // 75–110 cycles on real machines).
            self.stats.c2c_transfers += 1;
            if is_store {
                self.invalidate_others(line, core, entry);
                let e = self.dir.entry_or_default(line);
                e.sharers = me;
                e.dirty = Some(core as u8);
            } else {
                let e = self.dir.entry_or_default(line);
                e.sharers |= me;
                e.dirty = None; // owner writes back on a read transfer
            }
            now + self.l1_lat as u64 + self.c2c as u64
        } else {
            // Fetch from L2 / DRAM.
            let bank = (line as usize) % self.l2_banks;
            let start = (now + self.l1_lat as u64).max(self.l2_busy[bank]);
            self.l2_busy[bank] = start + 2;
            let done = if self.l2.probe(addr) {
                self.stats.l2_hits += 1;
                start + self.l2_lat as u64
            } else {
                self.stats.l2_misses += 1;
                self.l2.insert(addr);
                self.dram.access(addr, start + self.l2_lat as u64)
            };
            let e = self.dir.entry_or_default(line);
            e.sharers |= me;
            e.dirty = if is_store { Some(core as u8) } else { None };
            done
        };

        // Fill the L1; evictions update the directory. (Emptied entries
        // stay in the table zeroed — indistinguishable from absent.)
        let mut l2_writeback = None;
        if let Some(victim) = self.l1[core].insert(addr) {
            if let Some(e) = self.dir.get_mut(victim) {
                e.sharers &= !me;
                if e.dirty == Some(core as u8) {
                    e.dirty = None; // write-back to L2 absorbed
                    l2_writeback = Some(victim * self.l1_line);
                }
            }
        }
        if let Some(wb) = l2_writeback {
            self.l2.insert(wb);
        }
        done
    }

    fn invalidate_others(&mut self, line: u64, core: usize, entry: DirEntry) {
        for c in 0..self.l1.len() {
            if c != core && entry.sharers & (1 << (c as u64 & 63)) != 0 {
                self.l1[c].remove_line(line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine() -> MachineConfig {
        MachineConfig::conventional(4)
    }

    #[test]
    fn l1_hit_after_fill() {
        let cfg = small_machine();
        let mut m = MemSystem::new(&cfg);
        let t1 = m.access(0, 0x1000, false, 0);
        assert!(t1 > cfg.l1.hit_latency as u64, "cold miss goes deeper");
        let t2 = m.access(0, 0x1000, false, 100);
        assert_eq!(t2, 100 + cfg.l1.hit_latency as u64, "now an L1 hit");
        assert_eq!(m.stats.l1_hits, 1);
    }

    #[test]
    fn same_line_hits() {
        let cfg = small_machine();
        let mut m = MemSystem::new(&cfg);
        m.access(0, 0x1000, false, 0);
        let t = m.access(0, 0x1030, false, 50); // same 64B line
        assert_eq!(t, 50 + cfg.l1.hit_latency as u64);
    }

    #[test]
    fn cross_core_transfer_costs_c2c() {
        let cfg = small_machine();
        let mut m = MemSystem::new(&cfg);
        m.access(0, 0x2000, true, 0); // core 0 owns dirty
        let t = m.access(1, 0x2000, false, 100);
        assert_eq!(t, 100 + (cfg.l1.hit_latency + cfg.c2c_latency) as u64);
        assert_eq!(m.stats.c2c_transfers, 1);
    }

    #[test]
    fn store_invalidates_sharers() {
        let cfg = small_machine();
        let mut m = MemSystem::new(&cfg);
        m.access(0, 0x3000, false, 0);
        m.access(1, 0x3000, false, 50); // both share
                                        // Core 0 writes: upgrade, invalidating core 1.
        let t = m.access(0, 0x3000, true, 100);
        assert!(t >= 100 + cfg.c2c_latency as u64);
        // Core 1 must now miss.
        let before = m.stats.l1_misses;
        m.access(1, 0x3000, false, 300);
        assert_eq!(m.stats.l1_misses, before + 1);
    }

    #[test]
    fn ping_pong_pays_every_round() {
        let cfg = small_machine();
        let mut m = MemSystem::new(&cfg);
        let mut now = 0;
        m.access(0, 0x9000, true, now);
        let before = m.stats.c2c_transfers;
        for round in 0..6 {
            now += 500;
            let core = 1 - (round % 2);
            m.access(core, 0x9000, true, now);
        }
        assert_eq!(m.stats.c2c_transfers, before + 6);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let cfg = small_machine();
        let mut m = MemSystem::new(&cfg);
        let t_cold = m.access(0, 0x4000, false, 0);
        // Evict from L1 by filling the set: L1 32KB/64B/8way = 64 sets;
        // same set stride = 64 * 64 = 4096 bytes.
        for k in 1..=8u64 {
            m.access(0, 0x4000 + k * 4096, false, 1000 * k);
        }
        let t_l2 = m.access(0, 0x4000, false, 100_000);
        assert!(
            t_l2 - 100_000 < t_cold,
            "L2 hit ({}) beats DRAM ({t_cold})",
            t_l2 - 100_000
        );
        assert!(m.stats.l2_hits >= 1);
    }
}
