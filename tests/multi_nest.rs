//! Workspace tests for the multi-nest scenario axis: committed
//! multi-nest specs must lower deterministically with sound nest
//! boundaries, per-nest derived metrics must be internally consistent
//! (plan→nest attribution sums to whole-program coverage, in-context
//! weights account for the whole run), and campaign reports must carry
//! the speedup-vs-coverage derived rows.

use helix_rc::campaign::run_campaign;
use helix_rc::hcc::{compile, HccConfig};
use helix_rc::scenario::{run_scenario, RunOverrides};
use helix_rc::workloads::{
    builtin_spec, workload_from_spec, CampaignExperiment, CampaignGrid, CampaignSpec, Scale,
    ScenarioSpec,
};
use std::path::PathBuf;

const MULTI_NEST: [&str; 5] = [
    "950.twonest",
    "960.cov_hi",
    "961.cov_mid",
    "962.cov_lo",
    "970.pipeline",
];

fn committed(name: &str) -> ScenarioSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("scenarios/{name}.toml"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Every committed multi-nest scenario matches its builtin, has >= 2
/// nests, and the committed set covers the acceptance floor.
#[test]
fn committed_multi_nest_scenarios_cover_the_axis() {
    for name in MULTI_NEST {
        let spec = committed(name);
        assert_eq!(spec, builtin_spec(name).unwrap(), "{name} drifted");
        assert!(spec.nests.len() >= 2, "{name} is not multi-nest");
    }
    // At least one scenario exercises nest-private regions, one carries
    // state between nests, and the coverage family sweeps glue weight.
    assert!(MULTI_NEST
        .iter()
        .any(|n| committed(n).nests.iter().any(|x| !x.regions.is_empty())));
    assert!(MULTI_NEST
        .iter()
        .any(|n| committed(n).nests.iter().any(|x| x.export.is_some())));
    let glue_of = |name: &str| committed(name).nests[0].glue.per_n;
    assert!(glue_of("960.cov_hi") < glue_of("961.cov_mid"));
    assert!(glue_of("961.cov_mid") < glue_of("962.cov_lo"));
}

/// Plan→nest attribution is exact: the per-nest program coverages
/// (plans mapped through the recorded block boundaries) must sum to the
/// whole-program compile coverage, and every plan must land in exactly
/// one nest.
#[test]
fn nest_boundaries_partition_the_parallelized_loops() {
    for name in MULTI_NEST {
        let spec = committed(name);
        let w = workload_from_spec(&spec, Scale::Test).expect(name);
        assert_eq!(w.nests.len(), spec.nests.len(), "{name}");
        let compiled = compile(&w.program, &HccConfig::v3(8)).expect(name);
        assert!(!compiled.plans.is_empty(), "{name}: nothing parallelized");

        let mut mapped_plans = 0usize;
        let mut mapped_coverage = 0.0f64;
        for boundary in &w.nests {
            let (coverage, plans) =
                compiled.coverage_in_blocks(boundary.first_block, boundary.end_block);
            mapped_plans += plans;
            mapped_coverage += coverage;
        }
        assert_eq!(
            mapped_plans,
            compiled.plans.len(),
            "{name}: every plan must fall inside exactly one nest boundary"
        );
        assert!(
            (mapped_coverage - compiled.stats.coverage).abs() < 1e-9,
            "{name}: nest coverages {mapped_coverage} != whole {}",
            compiled.stats.coverage
        );
    }
}

/// `run_scenario` on a multi-nest spec reports per-nest rows whose
/// in-context weights (nests + glue) account for the whole sequential
/// run, and serializes them to JSON.
#[test]
fn scenario_reports_carry_consistent_nest_rows() {
    let spec = committed("962.cov_lo");
    let report = run_scenario(
        &spec,
        Scale::Test,
        RunOverrides {
            cores: Some(8),
            fuel: None,
            ..RunOverrides::default()
        },
    )
    .expect("962.cov_lo runs");
    assert_eq!(report.nests.len(), 2);
    let total: f64 = report
        .nests
        .iter()
        .map(|nest| nest.weight + nest.glue_weight)
        .sum();
    assert!(
        (0.95..=1.001).contains(&total),
        "weights must account for the run, got {total}"
    );
    // The low-coverage family member spends most of its time in glue.
    let glue: f64 = report.nests.iter().map(|nest| nest.glue_weight).sum();
    assert!(glue > 0.5, "cov_lo glue fraction {glue}");
    for nest in &report.nests {
        assert!(nest.plans >= 1, "{}: no plans", nest.name);
        assert!(
            nest.speedup > 0.5,
            "{}: speedup {}",
            nest.name,
            nest.speedup
        );
    }
    let json = report.to_json();
    assert!(json.contains("\"nests\""));
    assert!(json.contains("\"glue_weight\""));

    // Determinism: nest rows are cycle-derived, so fingerprints match.
    let again = run_scenario(
        &spec,
        Scale::Test,
        RunOverrides {
            cores: Some(8),
            fuel: None,
            ..RunOverrides::default()
        },
    )
    .expect("962.cov_lo runs twice");
    assert_eq!(report.fingerprint(), again.fingerprint());
    assert_eq!(report.nests, again.nests);
}

/// Campaigns with a `generations` experiment emit one derived
/// speedup-vs-coverage row per scenario, with per-nest rows for
/// multi-nest scenarios, deterministically.
#[test]
fn campaigns_emit_derived_speedup_vs_coverage_rows() {
    let spec = CampaignSpec {
        name: "derived-pin".into(),
        description: String::new(),
        scenarios: vec!["unused".into()],
        scale: Scale::Test,
        seed: 0,
        grid: CampaignGrid {
            cores: vec![8],
            sweep_cores: vec![],
            experiments: vec![CampaignExperiment::Generations],
            nest_override: None,
        },
        resilience: Default::default(),
    };
    let scenarios = vec![committed("175.vpr"), committed("950.twonest")];
    let a = run_campaign(&spec, &scenarios).expect("campaign runs");
    let b = run_campaign(&spec, &scenarios).expect("campaign runs twice");
    assert_eq!(a, b, "derived rows must be deterministic");
    assert_eq!(a.to_json(), b.to_json());

    assert_eq!(a.derived.len(), 2);
    let vpr = &a.derived[0];
    assert_eq!(vpr.scenario, "175.vpr");
    assert!(vpr.nests.is_empty());
    let twonest = &a.derived[1];
    assert_eq!(twonest.scenario, "950.twonest");
    assert_eq!(twonest.nests.len(), 2);
    for d in &a.derived {
        assert!((0.0..=1.0).contains(&d.coverage), "{}", d.scenario);
        assert!(d.amdahl_bound >= 1.0, "{}", d.scenario);
        // The generations row's speedup is the derived speedup.
        let gen_speedup = a
            .rows
            .iter()
            .find(|r| r.scenario == d.scenario && r.experiment == "generations")
            .and_then(|r| r.helix_speedup)
            .unwrap();
        assert_eq!(d.speedup, gen_speedup, "{}", d.scenario);
        assert!(
            (d.bound_frac - d.speedup / d.amdahl_bound).abs() < 1e-12,
            "{}",
            d.scenario
        );
    }
    let json = a.to_json();
    assert!(json.contains("\"derived\""));
    assert!(json.contains("\"amdahl_bound\""));
    let table = a.table();
    assert!(table.contains("speedup vs coverage"), "{table}");
    assert!(table.contains("per-nest breakdown"), "{table}");

    // Without generations there is nothing to anchor on: no derived.
    let mut no_gen = spec;
    no_gen.grid.experiments = vec![CampaignExperiment::CoupledVsRing];
    let report = run_campaign(&no_gen, &scenarios).expect("campaign runs");
    assert!(report.derived.is_empty());
    assert!(!report.to_json().contains("\"derived\""));
}
