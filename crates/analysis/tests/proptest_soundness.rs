//! Soundness property: for random loop programs, every dynamically
//! observed loop-carried dependence must be reported by the static
//! analysis, at every tier and with or without the affine refinement.
//!
//! The generator respects the workspace's pointer discipline (pointers
//! originate from regions and `Alloc`, never forged from integers), which
//! is the assumption under which the analysis is sound.

use helix_analysis::{analyze_loop, compare, observe_loop_deps, AliasTier, DepConfig, PointsTo};
use helix_ir::cfg::LoopForest;
use helix_ir::interp::Env;
use helix_ir::{AddrExpr, BinOp, Intrinsic, Operand, Program, ProgramBuilder, Ty};
use proptest::prelude::*;

/// One loop-body action in the generated program.
#[derive(Debug, Clone)]
enum Action {
    /// `scratch = a[f(i)]` — load with affine or table-driven index.
    LoadArr {
        arr: u8,
        affine: bool,
        scale: i64,
        off: i64,
    },
    /// `a[f(i)] = scratch` — store with affine or table-driven index.
    StoreArr {
        arr: u8,
        affine: bool,
        scale: i64,
        off: i64,
    },
    /// `scratch = op(scratch, i)` — pure ALU work.
    Alu(u8),
    /// `scratch = pure_hash(scratch)` — a library call.
    Hash,
    /// accumulate into a fixed memory cell.
    AccumCell { arr: u8, off: i64 },
    /// conditional store under a data-dependent predicate.
    CondStore { arr: u8, off: i64 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..3u8, any::<bool>(), 1..3i64, 0..4i64).prop_map(|(arr, affine, scale, off)| {
            Action::LoadArr {
                arr,
                affine,
                scale,
                off: off * 8,
            }
        }),
        (0..3u8, any::<bool>(), 1..3i64, 0..4i64).prop_map(|(arr, affine, scale, off)| {
            Action::StoreArr {
                arr,
                affine,
                scale,
                off: off * 8,
            }
        }),
        (0..4u8).prop_map(Action::Alu),
        Just(Action::Hash),
        (0..3u8, 0..4i64).prop_map(|(arr, off)| Action::AccumCell { arr, off: off * 8 }),
        (0..3u8, 0..4i64).prop_map(|(arr, off)| Action::CondStore { arr, off: off * 8 }),
    ]
}

const TRIP: i64 = 40;
const ARR_SLOTS: i64 = 512;

fn build(actions: &[Action]) -> Program {
    let mut b = ProgramBuilder::new("prop");
    let arrs = [
        b.region("arr0", (ARR_SLOTS * 8) as u64, Ty::I64),
        b.region("arr1", (ARR_SLOTS * 8) as u64, Ty::I64),
        b.region("arr2", (ARR_SLOTS * 8) as u64, Ty::I64),
    ];
    let table = b.region("table", (TRIP * 8) as u64, Ty::I64);
    // Setup: fill the index table with a deterministic scramble.
    b.counted_loop(0, TRIP, 1, |b, i| {
        let h = b.reg();
        b.call(Some(h), Intrinsic::PureHash, vec![Operand::Reg(i)]);
        b.bin(h, BinOp::And, h, ARR_SLOTS / 2 - 1);
        b.store(h, AddrExpr::region_indexed(table, i, 8, 0), Ty::I64);
    });
    // The analyzed loop.
    let scratch = b.reg();
    b.const_i(scratch, 1);
    b.counted_loop(0, TRIP, 1, |b, i| {
        let idx = b.reg();
        for a in actions {
            match a {
                Action::LoadArr {
                    arr,
                    affine,
                    scale,
                    off,
                } => {
                    if *affine {
                        b.load(
                            scratch,
                            AddrExpr::region_indexed(arrs[*arr as usize % 3], i, scale * 8, *off),
                            Ty::I64,
                        );
                    } else {
                        b.load(idx, AddrExpr::region_indexed(table, i, 8, 0), Ty::I64);
                        b.load(
                            scratch,
                            AddrExpr::region_indexed(arrs[*arr as usize % 3], idx, 8, *off),
                            Ty::I64,
                        );
                    }
                }
                Action::StoreArr {
                    arr,
                    affine,
                    scale,
                    off,
                } => {
                    if *affine {
                        b.store(
                            scratch,
                            AddrExpr::region_indexed(arrs[*arr as usize % 3], i, scale * 8, *off),
                            Ty::I64,
                        );
                    } else {
                        b.load(idx, AddrExpr::region_indexed(table, i, 8, 0), Ty::I64);
                        b.store(
                            scratch,
                            AddrExpr::region_indexed(arrs[*arr as usize % 3], idx, 8, *off),
                            Ty::I64,
                        );
                    }
                }
                Action::Alu(k) => {
                    let op = match k % 4 {
                        0 => BinOp::Add,
                        1 => BinOp::Xor,
                        2 => BinOp::Mul,
                        _ => BinOp::Sub,
                    };
                    b.bin(scratch, op, scratch, i);
                }
                Action::Hash => {
                    b.call(
                        Some(scratch),
                        Intrinsic::PureHash,
                        vec![Operand::Reg(scratch)],
                    );
                }
                Action::AccumCell { arr, off } => {
                    let c = b.reg();
                    b.load(c, AddrExpr::region(arrs[*arr as usize % 3], *off), Ty::I64);
                    b.bin(c, BinOp::Add, c, scratch);
                    b.store(c, AddrExpr::region(arrs[*arr as usize % 3], *off), Ty::I64);
                }
                Action::CondStore { arr, off } => {
                    let c = b.reg();
                    b.bin(c, BinOp::And, scratch, 1i64);
                    b.if_then(c, |b| {
                        b.store(
                            scratch,
                            AddrExpr::region_indexed(arrs[*arr as usize % 3], i, 8, *off),
                            Ty::I64,
                        );
                    });
                }
            }
        }
    });
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analysis_is_sound_at_every_tier(
        actions in prop::collection::vec(action_strategy(), 1..8),
    ) {
        let p = build(&actions);
        prop_assert!(p.validate().is_ok());
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        // The analyzed loop is the second top-level loop (after setup).
        let mut roots: Vec<_> = forest.roots();
        roots.sort_by_key(|&i| forest.loops[i].lp.header);
        prop_assert_eq!(roots.len(), 2);
        let lp = forest.loops[roots[1]].lp.clone();

        let mut env = Env::for_program(&p);
        let dynamic = observe_loop_deps(&p, &lp, &mut env, 50_000_000).unwrap();

        for tier in AliasTier::ALL {
            let pts = PointsTo::analyze(&p, tier);
            for affine in [false, true] {
                let deps = analyze_loop(&p, &lp, DepConfig { tier, affine_aware: affine }, &pts);
                let acc = compare(&deps, &dynamic);
                prop_assert!(
                    acc.sound(),
                    "tier {tier} affine {affine}: missed {} of {} actual deps",
                    acc.missed,
                    dynamic.pairs.len(),
                );
            }
        }
    }

    /// Precision is monotone: identified-dependence count must not grow
    /// as tiers strengthen (with affine reasoning fixed).
    #[test]
    fn precision_is_monotone(
        actions in prop::collection::vec(action_strategy(), 1..8),
    ) {
        let p = build(&actions);
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let mut roots: Vec<_> = forest.roots();
        roots.sort_by_key(|&i| forest.loops[i].lp.header);
        let lp = forest.loops[roots[1]].lp.clone();

        let mut prev = usize::MAX;
        for tier in AliasTier::ALL {
            let pts = PointsTo::analyze(&p, tier);
            let deps = analyze_loop(&p, &lp, DepConfig { tier, affine_aware: true }, &pts);
            let n = deps.pair_set().len();
            prop_assert!(n <= prev, "tier {tier} reported {n} > previous {prev}");
            prev = n;
        }
    }
}
