//! Deterministic pseudo-random number generation for the `Rand`
//! intrinsic and workload construction.

/// SplitMix64 generator: tiny, fast, and deterministic across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        // "seed of helix" spelled in hex.
        SplitMix64::new(0x5EED_0F4E_11E1_1C5E)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
