//! `wait`/`signal` placement.
//!
//! For each sequential segment, a `wait` is inserted before the first
//! shared access on every path and a `signal` fires exactly once per
//! iteration, at the earliest point where no further access of the
//! segment can execute:
//!
//! * HCCv3 ([`PlacementStyle::EarlySignal`]) places a bare `signal` on
//!   segment-bypassing paths, so an iteration that forgoes a segment
//!   "immediately notifies its successor without waiting for its
//!   predecessor" (paper §3.2, Fig. 5c);
//! * HCCv1/v2 ([`PlacementStyle::Conservative`]) place `wait; signal` on
//!   those paths, reproducing the sequential chain of conventional
//!   synchronization (Fig. 5b).
//!
//! `wait` is idempotent within an iteration (the core squashes
//! re-executions), so a path crossing two access blocks pays only one
//! blocking wait plus a one-cycle squashed re-check — that re-check is
//! charged to the paper's "wait/signal instructions" overhead category.

use helix_ir::cfg::NaturalLoop;
use helix_ir::{BlockId, Inst, Program, SegmentId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Synchronization placement style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStyle {
    /// Every path executes `wait` then `signal` (HCCv1/v2).
    Conservative,
    /// Bypassing paths execute only `signal` (HCCv3's wait elimination).
    EarlySignal,
}

/// Blocks of `lp` from which an access of `seg` is still reachable along
/// intra-iteration paths (back edge of `lp` excluded; inner-loop cycles
/// included). `entry_reach[b]` is the property at block entry.
pub fn entry_reach(
    program: &Program,
    lp: &NaturalLoop,
    access_blocks: &BTreeSet<BlockId>,
) -> BTreeMap<BlockId, bool> {
    let mut reach: BTreeMap<BlockId, bool> = lp.blocks.iter().map(|&b| (b, false)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &lp.blocks {
            let mut v = access_blocks.contains(&b);
            if !v {
                for succ in program.graph.block(b).term.successors() {
                    if succ == lp.header || !lp.blocks.contains(&succ) {
                        continue; // back edge or loop exit
                    }
                    if reach[&succ] {
                        v = true;
                        break;
                    }
                }
            }
            if v && !reach[&b] {
                reach.insert(b, true);
                changed = true;
            }
        }
    }
    reach
}

/// Static count of instructions in the segment's region — the paper's
/// "instructions per sequential segment" metric — at *instruction*
/// granularity: within an access block only the span from the first to
/// the last relevant access counts (extended to the block boundary when
/// the region continues across it); blocks strictly between accesses
/// count fully.
pub fn region_inst_size(
    program: &Program,
    lp: &NaturalLoop,
    is_access: &dyn Fn(BlockId, usize, &helix_ir::Inst) -> bool,
) -> usize {
    // Access positions per block.
    let mut positions: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
    for &b in &lp.blocks {
        let v: Vec<usize> = program
            .graph
            .block(b)
            .insts
            .iter()
            .enumerate()
            .filter(|(idx, i)| is_access(b, *idx, i))
            .map(|(idx, _)| idx)
            .collect();
        if !v.is_empty() {
            positions.insert(b, v);
        }
    }
    if positions.is_empty() {
        return 0;
    }
    let access_blocks: BTreeSet<BlockId> = positions.keys().copied().collect();
    let reach_down = entry_reach(program, lp, &access_blocks);
    // reach_up: the block is reachable from an access block along
    // intra-iteration paths.
    let preds = program.graph.predecessors();
    let mut reach_up: BTreeMap<BlockId, bool> = lp.blocks.iter().map(|&b| (b, false)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &lp.blocks {
            if reach_up[&b] || b == lp.header {
                continue; // entering the header starts a new iteration
            }
            let v = preds[b.index()]
                .iter()
                .any(|&p| lp.blocks.contains(&p) && (access_blocks.contains(&p) || reach_up[&p]));
            if v {
                reach_up.insert(b, true);
                changed = true;
            }
        }
    }

    let mut total = 0usize;
    for &b in &lp.blocks {
        let len = program.graph.block(b).insts.len();
        if let Some(pos) = positions.get(&b) {
            let first = *pos.first().expect("nonempty");
            let last = *pos.last().expect("nonempty");
            let start = if reach_up[&b] { 0 } else { first };
            let succ_reaches = program
                .graph
                .block(b)
                .term
                .successors()
                .into_iter()
                .any(|s| s != lp.header && lp.blocks.contains(&s) && reach_down[&s]);
            let end = if succ_reaches { len } else { last + 1 };
            total += end.saturating_sub(start);
        } else if reach_up[&b] && reach_down[&b] {
            total += len; // interior block between accesses
        }
    }
    total
}

/// [`region_inst_size`] for one tagged segment.
pub fn segment_region_size(program: &Program, lp: &NaturalLoop, seg: SegmentId) -> usize {
    region_inst_size(program, lp, &|_, _, i| {
        i.shared_tag().map(|t| t.seg) == Some(seg)
    })
}

/// [`region_inst_size`] for an explicit set of access sites.
pub fn region_size_for_sites(
    program: &Program,
    lp: &NaturalLoop,
    sites: &BTreeSet<helix_ir::InstSite>,
) -> usize {
    region_inst_size(program, lp, &|b, idx, _| {
        sites.contains(&helix_ir::InstSite {
            block: b,
            index: idx,
        })
    })
}

/// [`region_inst_size`] for the def/use sites of one register.
pub fn region_size_for_reg(program: &Program, lp: &NaturalLoop, reg: helix_ir::Reg) -> usize {
    region_inst_size(program, lp, &|_, _, i| {
        i.uses().contains(&reg) || i.def() == Some(reg)
    })
}

/// Blocks of `lp` containing accesses tagged with `seg`.
pub fn blocks_accessing(program: &Program, lp: &NaturalLoop, seg: SegmentId) -> BTreeSet<BlockId> {
    let mut out = BTreeSet::new();
    for &b in &lp.blocks {
        for inst in &program.graph.block(b).insts {
            if inst.shared_tag().map(|t| t.seg) == Some(seg) {
                out.insert(b);
                break;
            }
        }
    }
    out
}

/// Insert `wait`/`signal` instructions for segment `seg` of loop `lp`.
///
/// Returns the blocks added by edge splitting (they belong to the loop).
pub fn place_sync(
    program: &mut Program,
    lp: &NaturalLoop,
    seg: SegmentId,
    style: PlacementStyle,
) -> Vec<BlockId> {
    let access_blocks = blocks_accessing(program, lp, seg);
    if access_blocks.is_empty() {
        return Vec::new();
    }
    let reach = entry_reach(program, lp, &access_blocks);

    // Edge reachability for an edge (b -> s) inside the iteration.
    let edge_reach = |s: BlockId| -> bool {
        if s == lp.header || !lp.blocks.contains(&s) {
            false
        } else {
            reach[&s]
        }
    };

    // Plan in-block insertions first (original indices), then apply,
    // then split edges.
    // (block, index, inst, before)
    let mut inserts: Vec<(BlockId, usize, Inst)> = Vec::new();
    // Edges needing a signal-bearing split block.
    let mut edge_signals: Vec<(BlockId, BlockId)> = Vec::new();

    for &b in &lp.blocks {
        if !reach[&b] && !access_blocks.contains(&b) {
            continue;
        }
        let block = program.graph.block(b);
        // Wait before the first tagged access of the block.
        if access_blocks.contains(&b) {
            let first = block
                .insts
                .iter()
                .position(|i| i.shared_tag().map(|t| t.seg) == Some(seg))
                .expect("access block has an access");
            inserts.push((b, first, Inst::Wait { seg }));
        }
        // Signals.
        let succs = block.term.successors();
        let any_reach = succs.iter().any(|&s| edge_reach(s));
        if !any_reach {
            // Everything after this block is access-free. If the block
            // (or an earlier one) contained the access, signal here;
            // `reach[&b] || access` guaranteed by the outer filter.
            if access_blocks.contains(&b) {
                let last = block
                    .insts
                    .iter()
                    .rposition(|i| i.shared_tag().map(|t| t.seg) == Some(seg))
                    .expect("access block has an access");
                inserts.push((b, last + 1, Inst::Signal { seg }));
            } else {
                // Entry could reach an access only through successors,
                // none of which reach now: impossible (reach[&b] would be
                // false) — unless the block itself had the access.
                unreachable!("non-access block with reach but no reaching successor");
            }
        } else {
            // Mixed successors: signal on each crossing edge. The
            // header's loop-exit edge is not part of any iteration
            // (candidate loops exit only through the header, and the
            // runtime dispatches exact iteration counts), so it needs no
            // signal.
            for &s in &succs {
                if !edge_reach(s) && b != lp.header {
                    edge_signals.push((b, s));
                }
            }
        }
    }

    // Apply in-block insertions in descending position order.
    inserts.sort_by_key(|&(b, pos, _)| std::cmp::Reverse((b, pos)));
    for (b, pos, inst) in inserts {
        program.graph.block_mut(b).insts.insert(pos, inst);
    }

    // Split crossing edges and place signals (plus waits when
    // conservative).
    let mut new_blocks = Vec::new();
    edge_signals.sort();
    edge_signals.dedup();
    for (from, to) in edge_signals {
        let nb = program.graph.split_edge(from, to);
        let block = program.graph.block_mut(nb);
        if style == PlacementStyle::Conservative {
            block.insts.push(Inst::Wait { seg });
        }
        block.insts.push(Inst::Signal { seg });
        new_blocks.push(nb);
    }
    new_blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::cfg::LoopForest;
    use helix_ir::{
        AddrExpr, BinOp, InstOrigin, Operand, Program, ProgramBuilder, SharedTag, TrafficClass, Ty,
    };

    /// Build the Fig. 5 shape: a loop whose body conditionally updates a
    /// shared cell (left path) or does private work (right path).
    fn fig5_program(seg: SegmentId) -> Program {
        let mut b = ProgramBuilder::new("fig5");
        let cell = b.region("shared_cell", 64, Ty::I64);
        b.counted_loop(0, 40, 1, |b, i| {
            let c = b.reg();
            b.bin(c, BinOp::And, i, 1i64);
            b.if_else(
                c,
                |b| {
                    // Left path: a = a + 1 through shared memory.
                    let a = b.reg();
                    b.load(a, AddrExpr::region(cell, 0), Ty::I64);
                    b.bin(a, BinOp::Add, a, 1i64);
                    b.store(a, AddrExpr::region(cell, 0), Ty::I64);
                },
                |b| {
                    // Right path: private computation.
                    let t = b.reg();
                    b.bin(t, BinOp::Mul, i, 3i64);
                },
            );
        });
        let mut p = b.finish();
        // Tag the shared accesses manually (segment formation normally
        // does this).
        for blk in p.graph.blocks.iter_mut() {
            for inst in &mut blk.insts {
                match inst {
                    Inst::Load { addr, shared, .. } | Inst::Store { addr, shared, .. } => {
                        if matches!(addr.base, helix_ir::AddrBase::Region(r) if r.0 == 0) {
                            *shared = Some(SharedTag {
                                seg,
                                class: TrafficClass::MemoryCarried,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        p
    }

    fn count_insts(p: &Program, pred: impl Fn(&Inst) -> bool) -> usize {
        p.graph
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn early_signal_places_bare_signal_on_bypass() {
        let seg = SegmentId(0);
        let mut p = fig5_program(seg);
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let added = place_sync(&mut p, &lp, seg, PlacementStyle::EarlySignal);
        assert!(p.validate().is_ok());
        // One wait (before the load in the left arm).
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Wait { .. })), 1);
        // Two signals: after the store (left), and on the bypass edge.
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Signal { .. })), 2);
        // Exactly one edge was split (the bypass crossing).
        assert_eq!(added.len(), 1);
    }

    #[test]
    fn conservative_adds_wait_on_bypass() {
        let seg = SegmentId(0);
        let mut p = fig5_program(seg);
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        place_sync(&mut p, &lp, seg, PlacementStyle::Conservative);
        assert!(p.validate().is_ok());
        // Waits: before the load + on the bypass edge = 2.
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Wait { .. })), 2);
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Signal { .. })), 2);
    }

    #[test]
    fn straight_line_access_gets_one_pair() {
        let seg = SegmentId(3);
        let mut b = ProgramBuilder::new("line");
        let cell = b.region("c", 64, Ty::I64);
        b.counted_loop(0, 10, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region(cell, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, i);
            b.store(x, AddrExpr::region(cell, 0), Ty::I64);
        });
        let mut p = b.finish();
        for blk in &mut p.graph.blocks {
            for inst in &mut blk.insts {
                if let Inst::Load { shared, .. } | Inst::Store { shared, .. } = inst {
                    *shared = Some(SharedTag {
                        seg,
                        class: TrafficClass::MemoryCarried,
                    });
                }
            }
        }
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let added = place_sync(&mut p, &lp, seg, PlacementStyle::EarlySignal);
        assert!(added.is_empty());
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Wait { .. })), 1);
        assert_eq!(count_insts(&p, |i| matches!(i, Inst::Signal { .. })), 1);
        // Order within the body block: wait ... load ... store ... signal.
        let body = p
            .graph
            .blocks
            .iter()
            .find(|b| b.insts.iter().any(|i| matches!(i, Inst::Wait { .. })))
            .unwrap();
        assert!(matches!(body.insts[0], Inst::Wait { .. }));
        assert!(matches!(body.insts.last().unwrap(), Inst::Signal { .. }));
    }

    #[test]
    fn access_inside_inner_loop_signals_after_it() {
        let seg = SegmentId(1);
        let mut b = ProgramBuilder::new("inner");
        let cell = b.region("c", 64, Ty::I64);
        b.counted_loop(0, 6, 1, |b, _i| {
            b.counted_loop(0, 4, 1, |b, j| {
                let x = b.reg();
                b.load(x, AddrExpr::region(cell, 0), Ty::I64);
                b.bin(x, BinOp::Add, x, j);
                b.store(x, AddrExpr::region(cell, 0), Ty::I64);
            });
            let t = b.reg();
            b.bin(t, BinOp::Add, Operand::imm(1), 2i64);
        });
        let mut p = b.finish();
        for blk in &mut p.graph.blocks {
            for inst in &mut blk.insts {
                if let Inst::Load { shared, .. } | Inst::Store { shared, .. } = inst {
                    *shared = Some(SharedTag {
                        seg,
                        class: TrafficClass::MemoryCarried,
                    });
                }
            }
        }
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let outer = forest
            .loops
            .iter()
            .find(|n| n.depth == 0)
            .unwrap()
            .lp
            .clone();
        place_sync(&mut p, &outer, seg, PlacementStyle::EarlySignal);
        assert!(p.validate().is_ok());
        // The signal must not be inside the inner loop: the inner loop's
        // body re-reaches the access, so the crossing is on its exit edge.
        let forest2 = LoopForest::compute(&p.graph, p.graph.entry);
        let inner = forest2
            .loops
            .iter()
            .find(|n| n.depth == 1)
            .unwrap()
            .lp
            .clone();
        for &blk in &inner.blocks {
            for inst in &p.graph.block(blk).insts {
                assert!(
                    !matches!(inst, Inst::Signal { .. }),
                    "signal must be outside the inner loop"
                );
            }
        }
        let _ = InstOrigin::Added;
    }

    #[test]
    fn segment_region_size_counts_span() {
        let seg = SegmentId(0);
        let p = fig5_program(seg);
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let size = segment_region_size(&p, &lp, seg);
        // Region: body block (cond), left arm (3 insts) at least.
        assert!(size >= 3, "got {size}");
    }
}
