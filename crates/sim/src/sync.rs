//! Synchronization bookkeeping shared by both wait models.
//!
//! [`SyncState`] records when each core *executed* each `signal`
//! (functional ground truth). The timing of when a waiting core observes
//! those signals differs by machine: through coherence-mediated flags
//! (conventional, lazy) or through ring-cache broadcast (HELIX-RC,
//! proactive).

use crate::config::SyncModel;
use helix_ir::SegmentId;

/// Record of executed signals per `(segment, core)`, stored densely:
/// slot `seg.index() * cores + core` holds that pair's signal times.
/// The table grows on demand, so arbitrary segment ids stay valid.
#[derive(Debug, Clone)]
pub struct SyncState {
    sent: Vec<Vec<u64>>,
    cores: usize,
}

impl Default for SyncState {
    /// Single-core bookkeeping; real machines use [`SyncState::new`].
    fn default() -> Self {
        SyncState::new(0, 1)
    }
}

impl SyncState {
    /// Bookkeeping for `cores` cores and (at least) `n_segs` segments.
    pub fn new(n_segs: usize, cores: usize) -> SyncState {
        SyncState {
            sent: vec![Vec::new(); n_segs * cores.max(1)],
            cores: cores.max(1),
        }
    }

    /// Rebuild for a new shape, reusing a retired table's allocations.
    /// Observably identical to [`SyncState::new`].
    pub fn renew(mut self, n_segs: usize, cores: usize) -> SyncState {
        let want = n_segs * cores.max(1);
        for v in &mut self.sent {
            v.clear();
        }
        self.sent.resize(want, Vec::new());
        self.cores = cores.max(1);
        self
    }

    fn slot(&self, seg: SegmentId, core: usize) -> usize {
        seg.index() * self.cores + core
    }

    /// Reset at parallel-loop entry (allocations are kept).
    pub fn begin_loop(&mut self) {
        for v in &mut self.sent {
            v.clear();
        }
    }

    /// Core `core` executed `signal seg` at cycle `now`.
    pub fn record_signal(&mut self, seg: SegmentId, core: usize, now: u64) {
        let slot = self.slot(seg, core);
        if slot >= self.sent.len() {
            self.sent.resize(slot + 1, Vec::new());
        }
        self.sent[slot].push(now);
    }

    /// Number of signals core `core` has executed for `seg`.
    pub fn count(&self, seg: SegmentId, core: usize) -> u64 {
        self.sent
            .get(self.slot(seg, core))
            .map(|v| v.len() as u64)
            .unwrap_or(0)
    }

    /// Execution time of the `k`-th (1-based) signal, if it happened.
    pub fn kth_time(&self, seg: SegmentId, core: usize, k: u64) -> Option<u64> {
        if k == 0 {
            return Some(0);
        }
        self.sent
            .get(self.slot(seg, core))
            .and_then(|v| v.get((k - 1) as usize))
            .copied()
    }
}

/// Signals required from `src` before iteration `iter` may enter a
/// segment: the number of iterations `< iter` assigned (round-robin) to
/// core `src` on an `n`-core ring.
pub fn required_count(src: usize, iter: u64, n: usize) -> u64 {
    let src = src as u64;
    let n = n as u64;
    if iter > src {
        (iter - src - 1) / n + 1
    } else {
        0
    }
}

/// The set of cores whose signals gate `core`'s wait under `model`.
pub fn required_sources(model: SyncModel, core: usize, n: usize) -> Vec<usize> {
    required_sources_iter(model, core, n).collect()
}

/// [`required_sources`] without materializing the list (the simulator
/// evaluates this once per waiting core per cycle).
pub fn required_sources_iter(
    model: SyncModel,
    core: usize,
    n: usize,
) -> impl Iterator<Item = usize> + Clone {
    let (range, chained) = match model {
        SyncModel::AllPredecessors => (0..n, false),
        SyncModel::ChainedPredecessor if n > 1 => (0..1, true),
        SyncModel::ChainedPredecessor => (0..0, true),
    };
    range.filter_map(move |c| {
        if chained {
            Some((core + n - 1) % n)
        } else if c != core {
            Some(c)
        } else {
            None
        }
    })
}

/// Why a wait has not been granted yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitBlock {
    /// A required producer has not executed its signal yet.
    Dependence,
    /// All producers signalled; the notification is still in flight.
    Communication,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_count_round_robin() {
        // 4 cores; iteration 6 (on core 2) needs: core 0 -> iters {0,4} = 2,
        // core 1 -> {1,5} = 2, core 3 -> {3} = 1.
        assert_eq!(required_count(0, 6, 4), 2);
        assert_eq!(required_count(1, 6, 4), 2);
        assert_eq!(required_count(3, 6, 4), 1);
        // First-lap iterations need nothing from later cores.
        assert_eq!(required_count(3, 2, 4), 0);
        assert_eq!(required_count(0, 0, 4), 0);
        assert_eq!(required_count(0, 1, 4), 1);
    }

    #[test]
    fn required_sources_by_model() {
        assert_eq!(
            required_sources(SyncModel::AllPredecessors, 2, 4),
            vec![0, 1, 3]
        );
        assert_eq!(
            required_sources(SyncModel::ChainedPredecessor, 2, 4),
            vec![1]
        );
        assert_eq!(
            required_sources(SyncModel::ChainedPredecessor, 0, 4),
            vec![3]
        );
        assert!(required_sources(SyncModel::ChainedPredecessor, 0, 1).is_empty());
    }

    #[test]
    fn sync_state_records_in_order() {
        let mut s = SyncState::new(4, 4);
        let seg = SegmentId(0);
        s.record_signal(seg, 1, 10);
        s.record_signal(seg, 1, 25);
        assert_eq!(s.count(seg, 1), 2);
        assert_eq!(s.kth_time(seg, 1, 1), Some(10));
        assert_eq!(s.kth_time(seg, 1, 2), Some(25));
        assert_eq!(s.kth_time(seg, 1, 3), None);
        assert_eq!(s.kth_time(seg, 1, 0), Some(0));
        s.begin_loop();
        assert_eq!(s.count(seg, 1), 0);
    }

    /// Distinct (segment, core) pairs occupy distinct dense slots.
    #[test]
    fn sync_state_slots_do_not_collide() {
        let mut s = SyncState::new(3, 4);
        s.record_signal(SegmentId(0), 1, 7);
        s.record_signal(SegmentId(1), 0, 9);
        assert_eq!(s.count(SegmentId(0), 1), 1);
        assert_eq!(s.count(SegmentId(1), 0), 1);
        assert_eq!(s.count(SegmentId(0), 0), 0);
        assert_eq!(s.count(SegmentId(1), 1), 0);
        // Out-of-range segments grow the table rather than panic.
        s.record_signal(SegmentId(9), 3, 1);
        assert_eq!(s.count(SegmentId(9), 3), 1);
    }
}
