//! Table 2: the decoupling design space.
//!
//! A static capability matrix: which schemes decouple which kinds of
//! communication, for actual vs. false dependences. HELIX-RC is the only
//! point covering all four quadrants.

use serde::{Deserialize, Serialize};

/// A parallelization scheme from the related-work comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheme {
    /// Name as printed in the table.
    pub name: &'static str,
    /// Decouples register communication for actual dependences.
    pub reg_actual: bool,
    /// Decouples register communication for false dependences.
    pub reg_false: bool,
    /// Decouples memory communication for actual dependences.
    pub mem_actual: bool,
    /// Decouples memory communication for false dependences.
    pub mem_false: bool,
}

/// The schemes of Table 2.
pub const SCHEMES: [Scheme; 5] = [
    Scheme {
        name: "HELIX-RC",
        reg_actual: true,
        reg_false: true,
        mem_actual: true,
        mem_false: true,
    },
    Scheme {
        name: "Multiscalar",
        reg_actual: true,
        reg_false: true,
        mem_actual: false,
        mem_false: true,
    },
    Scheme {
        name: "TRIPS",
        reg_actual: true,
        reg_false: true,
        mem_actual: false,
        mem_false: true,
    },
    Scheme {
        name: "T3",
        reg_actual: true,
        reg_false: true,
        mem_actual: false,
        mem_false: true,
    },
    Scheme {
        name: "TLS-based approaches",
        reg_actual: false,
        reg_false: false,
        mem_actual: false,
        mem_false: true,
    },
];

/// Render the design-space table as text.
pub fn design_space_table() -> String {
    let mut out = String::new();
    let quadrant = |actual: bool| -> [String; 2] {
        let pick = |f: fn(&Scheme) -> bool| {
            SCHEMES
                .iter()
                .filter(|s| f(s))
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        };
        if actual {
            [pick(|s| s.reg_actual), pick(|s| s.mem_actual)]
        } else {
            [pick(|s| s.reg_false), pick(|s| s.mem_false)]
        }
    };
    let actual = quadrant(true);
    let false_ = quadrant(false);
    out.push_str("                 | Actual dependences              | False dependences\n");
    out.push_str(&format!(
        "Register         | {:<31} | {}\n",
        actual[0], false_[0]
    ));
    out.push_str(&format!(
        "Memory           | {:<31} | {}\n",
        actual[1], false_[1]
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_helix_covers_all_quadrants() {
        let full: Vec<_> = SCHEMES
            .iter()
            .filter(|s| s.reg_actual && s.reg_false && s.mem_actual && s.mem_false)
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].name, "HELIX-RC");
    }

    #[test]
    fn helix_is_alone_in_memory_actual() {
        let q: Vec<_> = SCHEMES.iter().filter(|s| s.mem_actual).collect();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].name, "HELIX-RC");
    }

    #[test]
    fn table_renders() {
        let t = design_space_table();
        assert!(t.contains("HELIX-RC"));
        assert!(t.contains("TLS-based approaches"));
        assert!(t.contains("Register"));
        assert!(t.contains("Memory"));
    }
}
