//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p helix-bench --bin figures -- all
//! cargo run --release -p helix-bench --bin figures -- fig07 fig12
//! cargo run --release -p helix-bench --bin figures -- --full fig07
//! ```
//!
//! The sweep figures (fig07/fig09/fig12) are campaign-backed: they run
//! `campaigns/paper.toml` over the committed `scenarios/` specs, so run
//! this binary from the repository root.

use std::process::ExitCode;

fn usage() -> String {
    format!(
        "usage: figures [--full] <figure>...\n\n\
         figures: {}\n\n\
         campaign-backed (campaigns/paper.toml over scenarios/, so every\n\
         committed scenario spec appears automatically): {}\n\
         everything else runs the built-in SPEC stand-in suite.\n",
        helix_bench::FIGURES.join(" "),
        helix_bench::CAMPAIGN_FIGURES.join(" ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    if let Some(flag) = args
        .iter()
        .find(|a| a.starts_with("--") && *a != "--full" && *a != "--help")
    {
        eprintln!("figures: unknown option '{flag}'\n\n{}", usage());
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--help") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let scale = helix_bench::harness_scale(full);
    let figures: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if figures.is_empty() {
        eprint!("{}", usage());
        return ExitCode::from(2);
    }
    for f in figures {
        if let Err(e) = helix_bench::run_one(f, scale) {
            // Campaign-backed figures fail here (with the offending
            // file named) when a referenced scenario spec is missing or
            // malformed — never mid-run with a panic.
            eprintln!("figures: error running {f}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
