//! Minimal JSON reader for the perf-regression gate.
//!
//! `BENCH_sim.json` and the scenario reports are written by hand-rolled
//! serializers (the vendored `serde` is inert), so the gate needs an
//! equally dependency-free reader. This is a strict recursive-descent
//! parser for the JSON the harnesses emit: objects, arrays, strings
//! with basic escapes, numbers, booleans, and null.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's member list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = P { bytes, pos: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct P<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl P<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("bad number '{text}': {e}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        other => return Err(self.err(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let value = self.value()?;
            members.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_documents() {
        let doc = r#"{
  "harness": "bench_sim",
  "host_threads": 8,
  "workloads": [
    {"name": "175.vpr", "config": "conventional-16", "cycles": 156935,
     "fast_cycles_per_sec": 1.234e7, "speedup": 5.31},
    {"name": "164.gzip", "config": "helix-rc-16", "cycles": 1, "fast_cycles_per_sec": 2.0, "speedup": 1.0}
  ],
  "nested": {"ok": true, "missing": null}
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("harness").unwrap().as_str(), Some("bench_sim"));
        let ws = v.get("workloads").unwrap().as_array().unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(
            ws[0].get("fast_cycles_per_sec").unwrap().as_num(),
            Some(1.234e7)
        );
        assert_eq!(v.get("nested").unwrap().get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("nested").unwrap().get("missing"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#"{"s": "a\"b\\c\nd"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
    }
}
