//! Criterion microbenchmarks for the reproduction's own components:
//! ring-cache message throughput, points-to analysis, whole-compiler
//! runs, and simulator cycle rate. These measure the *implementation*,
//! complementing the `figures` binary that regenerates the paper's
//! results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use helix_analysis::{AliasTier, PointsTo};
use helix_hcc::{compile, HccConfig};
use helix_ring_cache::{RingCache, RingConfig};
use helix_sim::{simulate, simulate_sequential, EngineSel, MachineConfig, SimSession};
use helix_workloads::{by_name, Scale};

fn ring_throughput(c: &mut Criterion) {
    c.bench_function("ring_cache/store_circulation_16", |b| {
        b.iter_batched(
            || RingCache::new(RingConfig::paper_default(16)),
            |mut ring| {
                for k in 0..64u64 {
                    ring.store((k % 16) as usize, 0x1000 + k * 8);
                    for _ in 0..4 {
                        ring.tick();
                    }
                }
                while !ring.quiescent() {
                    ring.tick();
                }
                ring
            },
            BatchSize::SmallInput,
        )
    });
}

fn analysis_speed(c: &mut Criterion) {
    let w = by_name("197.parser", Scale::Test).unwrap();
    c.bench_function("analysis/points_to_full_tier", |b| {
        b.iter(|| PointsTo::analyze(&w.program, AliasTier::LibCalls))
    });
}

fn compile_speed(c: &mut Criterion) {
    let w = by_name("164.gzip", Scale::Test).unwrap();
    c.bench_function("hcc/compile_v3_gzip", |b| {
        b.iter(|| compile(&w.program, &HccConfig::v3(16)).unwrap())
    });
}

fn simulator_rate(c: &mut Criterion) {
    let w = by_name("175.vpr", Scale::Test).unwrap();
    let compiled = compile(&w.program, &HccConfig::v3(8)).unwrap();
    c.bench_function("sim/vpr_parallel_8core", |b| {
        b.iter(|| simulate(&compiled, &MachineConfig::helix_rc(8), 1 << 26).unwrap())
    });
    c.bench_function("sim/vpr_sequential", |b| {
        b.iter(|| {
            simulate_sequential(&w.program, &MachineConfig::conventional(8), 1 << 26).unwrap()
        })
    });
}

/// End-to-end simulator throughput on the communication-bound scenario
/// the event-skipping fast-forward targets: HCCv3 code on the
/// conventional 16-core machine (the paper's Fig. 9 "C" configuration),
/// where most cycles are spent in coherence-mediated waits. The naive
/// variant runs the same simulation with the per-cycle loop, so the two
/// numbers are the before/after of the optimization.
fn cycles_per_sec(c: &mut Criterion) {
    let w = by_name("175.vpr", Scale::Test).unwrap();
    let compiled = compile(&w.program, &HccConfig::v3(16)).unwrap();
    c.bench_function("sim/cycles_per_sec", |b| {
        b.iter(|| simulate(&compiled, &MachineConfig::conventional(16), 1 << 26).unwrap())
    });
    c.bench_function("sim/cycles_per_sec_naive", |b| {
        b.iter(|| {
            simulate(
                &compiled,
                &MachineConfig::conventional(16).without_fast_forward(),
                1 << 26,
            )
            .unwrap()
        })
    });
}

/// End-to-end simulator throughput on the dominant configuration: HCCv3
/// code on the HELIX-RC 16-core machine (ring-decoupled communication),
/// which every headline figure simulates and which used to be the
/// slowest simulator path by an order of magnitude. Tracked alongside
/// `sim/cycles_per_sec` by the bench snapshot job; the naive variant
/// runs the tree-walking interpreter with the per-cycle loop, so the
/// two numbers are the before/after of the pre-decoded engine plus the
/// allocation-free ring hot path.
fn helix_rc_cycles_per_sec(c: &mut Criterion) {
    let w = by_name("175.vpr", Scale::Test).unwrap();
    let compiled = compile(&w.program, &HccConfig::v3(16)).unwrap();
    c.bench_function("sim/helix_rc_cycles_per_sec", |b| {
        b.iter(|| simulate(&compiled, &MachineConfig::helix_rc(16), 1 << 26).unwrap())
    });
    c.bench_function("sim/helix_rc_cycles_per_sec_naive", |b| {
        b.iter(|| {
            simulate(
                &compiled,
                &MachineConfig::helix_rc(16)
                    .with_engine(EngineSel::Tree)
                    .without_fast_forward(),
                1 << 26,
            )
            .unwrap()
        })
    });
}

/// Lane-batched session drain on the campaign's dominant shape: a mixed
/// batch of helix-rc and conventional 16-core lanes over one shared
/// decode, scheduled off the session's next-event heap with retired
/// machines recycled through the pool. The session (and its warm pool)
/// persists across iterations, so this tracks exactly what a campaign
/// scenario's steady-state batch costs.
fn session_drain(c: &mut Criterion) {
    let w = by_name("175.vpr", Scale::Test).unwrap();
    let compiled = compile(&w.program, &HccConfig::v3(16)).unwrap();
    let mut session = SimSession::new(&compiled.program, &compiled.plans);
    c.bench_function("sim/session_drain", |b| {
        b.iter(|| {
            for _ in 0..2 {
                session.enqueue(MachineConfig::helix_rc(16), 1 << 26);
                session.enqueue(MachineConfig::conventional(16), 1 << 26);
            }
            for lane in session.drain() {
                lane.result.unwrap();
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ring_throughput, analysis_speed, compile_speed, simulator_rate, cycles_per_sec,
        helix_rc_cycles_per_sec, session_drain
}
criterion_main!(benches);
