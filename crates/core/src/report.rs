//! Plain-text rendering helpers for experiment outputs.

/// Schema version stamped into every scenario/campaign JSON report.
///
/// Bump this when the report shape changes incompatibly (a field is
/// renamed, removed, or re-interpreted — adding optional fields does
/// not count). `helix diff` names a version mismatch before falling
/// back to a byte comparison, so stale artifacts fail loudly instead of
/// producing a wall of line noise.
pub const SCHEMA_VERSION: u32 = 1;

/// Render a labelled bar chart line (`name  ######## 6.85x`).
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let frac = if max > 0.0 {
        (value / max).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let n = (frac * width as f64).round() as usize;
    format!(
        "{label:<28} {:<width$} {value:6.2}",
        "#".repeat(n),
        width = width
    )
}

/// Render a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Escape a string for embedding in the hand-rolled JSON reports
/// (scenario reports, campaign reports, `bench_sim`): backslash, quote,
/// and control characters. One definition so every emitter stays in
/// sync with the reader in `helix_bench::json`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a fraction as a percentage string.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", 100.0 * f)
}

/// Format a speedup.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        let full = bar("a", 10.0, 10.0, 20);
        let half = bar("a", 5.0, 10.0, 20);
        assert!(full.matches('#').count() > half.matches('#').count());
        assert!(full.contains("10.00"));
    }

    #[test]
    fn table_aligns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["short".into(), "1".into()],
                vec!["a-much-longer-name".into(), "2".into()],
            ],
        );
        assert!(t.contains("a-much-longer-name"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(x(6.849), "6.85x");
    }
}
