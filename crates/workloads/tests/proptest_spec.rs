//! Property tests for the scenario-spec TOML round trip: any spec the
//! strategy can produce must serialize to TOML, parse back to an equal
//! spec, and lower to the same program both ways.

use helix_ir::Distribution;
use helix_workloads::gen::generate;
use helix_workloads::spec::{
    CarryOp, CarryOperand, CarrySpec, CountExpr, ElemTy, HotLoopSpec, NestSpec, OpSpec, PhaseSpec,
    RegionSpec, RunSpec, ScenarioSpec,
};
use helix_workloads::spec_builtin::builtin_specs;
use helix_workloads::{Kind, Scale};
use proptest::prelude::*;

fn ri(name: &str, size: CountExpr) -> RegionSpec {
    RegionSpec {
        name: name.into(),
        size,
        elem: ElemTy::I64,
    }
}

fn mask_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![Just(1i64), Just(3), Just(15), Just(127), Just(255)]
}

fn dist_strategy() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        (1i64..40).prop_map(|value| Distribution::Fixed { value }),
        (1i64..10, 10i64..80).prop_map(|(lo, hi)| Distribution::Uniform { lo, hi }),
        (1i64..8, 40i64..200, 2i64..32).prop_map(|(short, long, period)| {
            Distribution::Bursty {
                short,
                long,
                period,
            }
        }),
        (2i64..12, 20i64..99).prop_map(|(mean, cap)| Distribution::Geometric { mean, cap }),
    ]
}

/// Ops that are valid anywhere in the body (current value is always
/// available because the loop streams `mid`, and `tab`/`links`/`lens`
/// regions are part of the fixed scaffold).
fn leaf_op_strategy(has_carry: bool) -> BoxedStrategy<OpSpec> {
    let base = prop_oneof![
        (1i64..60).prop_map(|insts| OpSpec::Work { insts }),
        (1i64..997).prop_map(|stride| OpSpec::Stream {
            region: "grid".into(),
            stride,
        }),
        (mask_strategy(), 0i64..3, any::<bool>(), any::<bool>()).prop_map(
            |(mask, shift, add, one)| OpSpec::Table {
                region: "tab".into(),
                shift: shift * 10,
                mask,
                op: if add {
                    helix_workloads::spec::UpdateOp::Add
                } else {
                    helix_workloads::spec::UpdateOp::Xor
                },
                value: if one {
                    helix_workloads::spec::UpdateValue::One
                } else {
                    helix_workloads::spec::UpdateValue::Cur
                },
            }
        ),
        mask_strategy().prop_map(|mask| OpSpec::ChainHead {
            region: "tab".into(),
            mask,
        }),
        Just(OpSpec::Bump {
            region: "out".into()
        }),
        (2i64..9).prop_map(|factor| OpSpec::ScaleStore {
            region: "mid".into(),
            factor,
        }),
        Just(OpSpec::Store {
            region: "mid".into()
        }),
        (1i64..4, mask_strategy()).prop_map(|(hops, mask)| OpSpec::PtrChase {
            region: "tab".into(),
            hops,
            mask,
        }),
        dist_strategy().prop_map(|dist| OpSpec::VarWork {
            region: "lens".into(),
            dist,
        }),
    ];
    if has_carry {
        prop_oneof![
            base,
            (
                prop_oneof![
                    Just(CarryOp::Add),
                    Just(CarryOp::Xor),
                    Just(CarryOp::Mul),
                    Just(CarryOp::Shl),
                    Just(CarryOp::Min)
                ],
                prop_oneof![
                    Just(CarryOperand::Cur),
                    (1i64..100).prop_map(CarryOperand::Imm)
                ]
            )
                .prop_map(|(op, operand)| OpSpec::Carry { op, operand })
        ]
        .boxed()
    } else {
        base.boxed()
    }
}

fn op_strategy(has_carry: bool) -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        leaf_op_strategy(has_carry),
        (
            mask_strategy(),
            prop::collection::vec(leaf_op_strategy(has_carry), 1..3),
            prop::collection::vec(leaf_op_strategy(has_carry), 0..3)
        )
            .prop_map(|(mask, then_ops, else_ops)| OpSpec::Guard {
                mask,
                then_ops,
                else_ops,
            }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        (50i64..400, any::<i64>(), any::<bool>(), 1i64..30),
        (
            prop::collection::vec(op_strategy(true), 1..5),
            prop::collection::vec(op_strategy(false), 1..5),
        ),
        (2i64..33, 0i64..3),
        (any::<bool>(), 0i64..200, 1i64..200),
    )
        .prop_map(
            |(
                (base_n, seed, with_carry, doall_work),
                (carry_ops, free_ops),
                (cores, machines),
                (multi_nest, glue_front, glue_back),
            )| {
                let carry = with_carry.then(|| CarrySpec {
                    init: seed % 1000,
                    out: "out".into(),
                });
                let ops = if with_carry { carry_ops } else { free_ops };
                let mut spec = ScenarioSpec {
                    name: "prop.scenario".into(),
                    description: "round-trip \"quoted\\path\"\nsecond line".into(),
                    kind: Kind::Int,
                    base_n,
                    seed,
                    regions: vec![
                        ri("in", CountExpr::n_plus(1)),
                        ri("mid", CountExpr::n_plus(1)),
                        ri("grid", CountExpr::fixed(1024)),
                        ri("tab", CountExpr::fixed(256)),
                        ri("lens", CountExpr::n_plus(1)),
                        ri("out", CountExpr::fixed(8)),
                    ],
                    phases: vec![
                        PhaseSpec::Fill {
                            region: "in".into(),
                            count: CountExpr::n(),
                            seed: seed % 97,
                        },
                        PhaseSpec::Doall {
                            input: "in".into(),
                            output: "mid".into(),
                            count: CountExpr::n(),
                            work: doall_work,
                        },
                        PhaseSpec::HotLoop(HotLoopSpec {
                            trips: CountExpr::n(),
                            input: Some("mid".into()),
                            carry,
                            ops,
                        }),
                    ],
                    nests: vec![],
                    run: RunSpec {
                        cores,
                        machines: RunSpec::default().machines[..(machines as usize + 1)].to_vec(),
                        ..RunSpec::default()
                    },
                };
                // Half the cases re-express the same pipeline as two
                // nests with glue, carried state, and a private region,
                // covering the multi-nest axis of the round trip.
                if multi_nest {
                    let phases = std::mem::take(&mut spec.phases);
                    spec.nests = vec![
                        NestSpec {
                            name: "front".into(),
                            glue: CountExpr::fixed(glue_front),
                            import: None,
                            export: Some("out".into()),
                            regions: vec![],
                            phases: phases[..2].to_vec(),
                        },
                        NestSpec {
                            name: "back".into(),
                            glue: CountExpr::fixed(glue_back),
                            import: Some("out".into()),
                            export: None,
                            regions: vec![ri("scratchpad", CountExpr::fixed(64))],
                            phases: phases[2..].to_vec(),
                        },
                    ];
                }
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// to_toml -> from_toml is the identity on generated specs.
    #[test]
    fn spec_toml_round_trip(spec in spec_strategy()) {
        prop_assert!(spec.validate().is_ok(), "strategy produced invalid spec");
        let text = spec.to_toml();
        let parsed = ScenarioSpec::from_toml(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(&parsed, &spec);
        // And the round-tripped spec lowers to the identical program.
        let p1 = generate(&spec, Scale::Test).expect("generate original");
        let p2 = generate(&parsed, Scale::Test).expect("generate parsed");
        prop_assert_eq!(p1, p2);
    }
}

/// The committed builtins round-trip through TOML too (belt and braces
/// on top of the property: these are the specs users start from).
#[test]
fn builtin_round_trip_through_files() {
    for spec in builtin_specs() {
        let parsed = ScenarioSpec::from_toml(&spec.to_toml()).expect(&spec.name);
        assert_eq!(parsed, spec, "{}", spec.name);
    }
}
