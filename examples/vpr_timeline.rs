//! The Fig. 5 scenario: the 175.vpr hot loop under coupled vs. decoupled
//! communication.
//!
//! Prints the measured execution profile of the same HCCv3-compiled code
//! on a conventional machine (lazy, pull-based coherence) and on the
//! ring cache (proactive circulation), showing where the cycles go.
//!
//! Run with `cargo run --release --example vpr_timeline`.

use helix_rc::experiment::{coupled_vs_ring, ExperimentOptions, FUEL};
use helix_rc::hcc::{compile, HccConfig};
use helix_rc::sim::{simulate, Bucket, MachineConfig};
use helix_rc::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let vpr = by_name("175.vpr", Scale::Test).expect("suite workload");
    let cores = 16;

    println!("== Fig. 5 scenario: 175.vpr hot loop, 16 cores ==\n");
    let row = coupled_vs_ring(&vpr, cores, &ExperimentOptions::default())?;
    println!(
        "conventional (coupled):  {:6.1}% of sequential time  ({:.0}% of busy cycles on communication)",
        row.conventional_pct,
        100.0 * row.conventional_comm_frac
    );
    println!(
        "ring cache (decoupled):  {:6.1}% of sequential time  ({:.0}% of busy cycles on communication)",
        row.ring_pct,
        100.0 * row.ring_comm_frac
    );

    // Per-bucket cycle timeline for the decoupled run.
    let compiled = compile(&vpr.program, &HccConfig::v3(cores as u32))?;
    let rep = simulate(&compiled, &MachineConfig::helix_rc(cores), FUEL)?;
    println!("\nwhere the decoupled run's core-cycles went:");
    let total = rep.attribution.grand_total().max(1);
    for b in Bucket::ALL {
        let cycles = rep.attribution.total(b);
        if cycles == 0 {
            continue;
        }
        let frac = cycles as f64 / total as f64;
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!("  {:<26} {:>5.1}% {}", b.label(), 100.0 * frac, bar);
    }
    Ok(())
}
