//! The event-skipping fast-forward must be invisible: simulating with
//! `MachineConfig::fast_forward` on and off has to produce bit-identical
//! reports. These tests run the three smallest workloads through both
//! paths on the machine shapes the experiments use and compare every
//! observable the ISSUE names (`cycles`, `mem_digest`, `iterations`)
//! plus the full attribution table.

use helix_rc::hcc::{compile, HccConfig};
use helix_rc::sim::{simulate, simulate_sequential, Bucket, MachineConfig, RunReport};
use helix_rc::workloads::{suite, Scale, Workload};

const FUEL: u64 = 1 << 26;

/// The three smallest workloads by static instruction count.
fn smallest_three() -> Vec<Workload> {
    let mut ws = suite(Scale::Test);
    ws.sort_by_key(|w| {
        w.program
            .graph
            .blocks
            .iter()
            .map(|b| b.insts.len())
            .sum::<usize>()
    });
    ws.truncate(3);
    ws
}

fn assert_reports_identical(fast: &RunReport, naive: &RunReport, what: &str) {
    assert_eq!(fast.cycles, naive.cycles, "{what}: cycles diverge");
    assert_eq!(fast.mem_digest, naive.mem_digest, "{what}: memory diverges");
    assert_eq!(
        fast.iterations, naive.iterations,
        "{what}: iterations diverge"
    );
    assert_eq!(
        fast.dyn_insts, naive.dyn_insts,
        "{what}: dynamic instructions diverge"
    );
    assert_eq!(
        fast.loop_invocations, naive.loop_invocations,
        "{what}: loop invocations diverge"
    );
    for b in Bucket::ALL {
        assert_eq!(
            fast.attribution.total(b),
            naive.attribution.total(b),
            "{what}: attribution bucket {b:?} diverges"
        );
    }
}

/// HCCv3 code on the HELIX-RC machine (ring-decoupled communication).
#[test]
fn fast_forward_is_cycle_exact_on_helix_machine() {
    for w in smallest_three() {
        let compiled = compile(&w.program, &HccConfig::v3(8)).expect(&w.name);
        let cfg = MachineConfig::helix_rc(8);
        let fast = simulate(&compiled, &cfg, FUEL).expect(&w.name);
        let naive = simulate(&compiled, &cfg.clone().without_fast_forward(), FUEL).expect(&w.name);
        assert_reports_identical(&fast, &naive, &w.name);
    }
}

/// HCCv3 code on the conventional machine (coherence-mediated waits —
/// the configuration with the longest skippable stall windows).
#[test]
fn fast_forward_is_cycle_exact_on_conventional_machine() {
    for w in smallest_three() {
        let compiled = compile(&w.program, &HccConfig::v3(8)).expect(&w.name);
        let cfg = MachineConfig::conventional(8);
        let fast = simulate(&compiled, &cfg, FUEL).expect(&w.name);
        let naive = simulate(&compiled, &cfg.clone().without_fast_forward(), FUEL).expect(&w.name);
        assert_reports_identical(&fast, &naive, &w.name);
    }
}

/// Sequential execution (idle worker cores, memory-latency stalls).
#[test]
fn fast_forward_is_cycle_exact_sequential() {
    for w in smallest_three() {
        let cfg = MachineConfig::conventional(8);
        let fast = simulate_sequential(&w.program, &cfg, FUEL).expect(&w.name);
        let naive = simulate_sequential(&w.program, &cfg.clone().without_fast_forward(), FUEL)
            .expect(&w.name);
        assert_reports_identical(&fast, &naive, &w.name);
    }
}

/// Scenario nest with a loop-carried value resolved at the exit
/// barrier. Reduction combining there charges machine cycles the ring
/// clock never sees, so the ring permanently lags the core clock; the
/// fast-forward jump must preserve that offset rather than resync the
/// two clocks (regression: `950.twonest` drifted by the combine cost on
/// every ring ready-time after the first barrier).
#[test]
fn fast_forward_is_cycle_exact_after_reduction_barrier() {
    use helix_rc::workloads::{workload_from_spec, ScenarioSpec};
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/950.twonest.toml"
    ))
    .expect("read scenario");
    let spec = ScenarioSpec::from_toml(&text).expect("parse scenario");
    let w = workload_from_spec(&spec, Scale::Test).expect("build workload");
    let compiled = compile(&w.program, &HccConfig::v3(4)).expect(&w.name);
    let cfg = MachineConfig::helix_rc(4);
    let fast = simulate(&compiled, &cfg, FUEL).expect(&w.name);
    let naive = simulate(&compiled, &cfg.clone().without_fast_forward(), FUEL).expect(&w.name);
    assert_reports_identical(&fast, &naive, &w.name);
}

/// The out-of-order core model exercises the ROB-retirement and fence
/// wake paths.
#[test]
fn fast_forward_is_cycle_exact_out_of_order() {
    for w in smallest_three() {
        let compiled = compile(&w.program, &HccConfig::v3(4)).expect(&w.name);
        let mut cfg = MachineConfig::helix_rc(4);
        cfg.core = helix_rc::sim::CoreModel::OutOfOrder { width: 2, rob: 48 };
        let fast = simulate(&compiled, &cfg, FUEL).expect(&w.name);
        let naive = simulate(&compiled, &cfg.clone().without_fast_forward(), FUEL).expect(&w.name);
        assert_reports_identical(&fast, &naive, &w.name);
    }
}
