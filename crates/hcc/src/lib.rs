//! # helix-hcc
//!
//! The HCC parallelizing compiler family of the HELIX-RC reproduction
//! (paper §2.1, §4). Three configurations mirror the paper's compilers:
//!
//! * **HCCv1** — baseline analysis, one merged sequential segment per
//!   loop, conservative synchronization on every path, analytical loop
//!   selection assuming expensive conventional synchronization;
//! * **HCCv2** — full dependence/induction analysis and predictable
//!   variable re-computation, still conservative splitting and
//!   synchronization (communication remains expensive);
//! * **HCCv3** — the HELIX-RC compiler: aggressive segment splitting,
//!   wait elimination with early signals, and profile-driven loop
//!   selection that assumes ring-cache-class communication latency.
//!
//! [`compile`] takes a sequential [`Program`] and produces a
//! [`CompiledProgram`]: the transformed program (demoted shared scalars,
//! tagged shared accesses, `wait`/`signal` instructions, per-iteration
//! re-computation prologues) plus one [`LoopPlan`] per parallelized loop
//! for the `helix-sim` runtime.

#![warn(missing_docs)]

pub mod demote;
pub mod placement;
pub mod plan;
pub mod profile;
pub mod segments;
pub mod select;
pub mod tlp;

pub use placement::PlacementStyle;
pub use plan::{
    reduction_identity, CompileStats, InductionPlan, LiveOutPlan, LiveOutResolve, LoopPlan,
    Poly2Plan, ReductionPlan, SegmentPlan,
};
pub use profile::{profile, LoopProfile, ProgramProfile};
pub use segments::SplitPolicy;
pub use select::{select_loops, CandidateEstimate, RejectReason, Selection, SelectionParams};

use helix_analysis::{analyze_loop, classify_registers, DepConfig, PointsTo, PredictableKind};
use helix_ir::cfg::{recognize_counted_loop, LoopForest, NaturalLoop};
use helix_ir::interp::{Env, InterpError};
use helix_ir::{
    AddrExpr, BinOp, BlockId, Inst, Operand, Program, Reg, RegionDecl, RegionId, Terminator, Ty,
    ValidateError,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Which generation of the compiler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerVersion {
    /// First-generation HELIX compiler.
    V1,
    /// Improved analysis and transformations, compiler-only (paper §2.1).
    V2,
    /// The HELIX-RC co-designed compiler (paper §4).
    V3,
}

impl fmt::Display for CompilerVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerVersion::V1 => f.write_str("HCCv1"),
            CompilerVersion::V2 => f.write_str("HCCv2"),
            CompilerVersion::V3 => f.write_str("HCCv3"),
        }
    }
}

/// Complete compiler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HccConfig {
    /// Which compiler generation this configuration models.
    pub version: CompilerVersion,
    /// Dependence-analysis precision.
    pub dep: DepConfig,
    /// Segment splitting policy.
    pub split: SplitPolicy,
    /// `wait`/`signal` placement style.
    pub placement: PlacementStyle,
    /// Loop-selection machine model.
    pub selection: SelectionParams,
    /// Interpreter step budget for the training-input profile run.
    pub profile_fuel: u64,
}

impl HccConfig {
    /// HCCv1 targeting `cores` cores.
    pub fn v1(cores: u32) -> HccConfig {
        HccConfig {
            version: CompilerVersion::V1,
            dep: DepConfig::baseline(),
            split: SplitPolicy::MaxSegments(1),
            placement: PlacementStyle::Conservative,
            selection: SelectionParams {
                cores,
                sync_cost: 100.0,
                min_speedup: 1.15,
                min_trip: 2.0,
                max_segments: 1,
            },
            profile_fuel: 500_000_000,
        }
    }

    /// HCCv2 targeting `cores` cores.
    pub fn v2(cores: u32) -> HccConfig {
        HccConfig {
            version: CompilerVersion::V2,
            dep: DepConfig::full(),
            split: SplitPolicy::MaxSegments(2),
            placement: PlacementStyle::Conservative,
            selection: SelectionParams {
                cores,
                sync_cost: 100.0,
                min_speedup: 1.15,
                min_trip: 2.0,
                max_segments: 2,
            },
            profile_fuel: 500_000_000,
        }
    }

    /// HCCv3 (HELIX-RC) targeting `cores` cores.
    pub fn v3(cores: u32) -> HccConfig {
        HccConfig {
            version: CompilerVersion::V3,
            dep: DepConfig::full(),
            split: SplitPolicy::Aggressive,
            placement: PlacementStyle::EarlySignal,
            selection: SelectionParams {
                cores,
                sync_cost: 8.0,
                min_speedup: 1.15,
                min_trip: 2.0,
                max_segments: 64,
            },
            profile_fuel: 500_000_000,
        }
    }
}

/// Compilation failure.
#[derive(Debug)]
pub enum CompileError {
    /// The input program is structurally invalid.
    Validate(ValidateError),
    /// The training-input profile run faulted.
    Profile(InterpError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Validate(e) => write!(f, "invalid program: {e}"),
            CompileError::Profile(e) => write!(f, "profiling failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> Self {
        CompileError::Validate(e)
    }
}

impl From<InterpError> for CompileError {
    fn from(e: InterpError) -> Self {
        CompileError::Profile(e)
    }
}

/// Output of [`compile`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The transformed program (run it sequentially and it behaves
    /// exactly like the input; run it under `helix-sim` with the plans
    /// and the selected loops execute in parallel).
    pub program: Program,
    /// One plan per parallelized loop.
    pub plans: Vec<LoopPlan>,
    /// Compile-time statistics (Table 1 / §6.2 reporting).
    pub stats: CompileStats,
    /// The configuration used.
    pub version: CompilerVersion,
    /// The selection decisions, for reporting.
    pub selection: Selection,
}

impl CompiledProgram {
    /// Profiled coverage and plan count of the parallelized loops whose
    /// header block lies in the half-open block-id range
    /// `[first_block, end_block)`.
    ///
    /// Loop headers keep their original block ids through compilation
    /// (transformation rewrites blocks in place and appends new ones at
    /// the end), so callers holding block ranges of the *input* program
    /// — e.g. the per-nest boundaries a multi-nest scenario records at
    /// generation time — can attribute each plan to its source range.
    /// The returned coverage is the fraction of whole-program profiled
    /// execution, not of the range itself.
    pub fn coverage_in_blocks(&self, first_block: usize, end_block: usize) -> (f64, usize) {
        let mut coverage = 0.0;
        let mut plans = 0;
        for plan in &self.plans {
            let header = plan.header.index();
            if (first_block..end_block).contains(&header) {
                coverage += plan.coverage;
                plans += 1;
            }
        }
        (coverage, plans)
    }
}

fn fresh_reg(p: &mut Program) -> Reg {
    let r = Reg(p.n_regs);
    p.n_regs += 1;
    r
}

/// Compile `program` with `config`.
///
/// # Errors
///
/// Fails if the program is invalid or the profiling run faults. A loop
/// that cannot be transformed is skipped, not an error.
pub fn compile(program: &Program, config: &HccConfig) -> Result<CompiledProgram, CompileError> {
    program.validate()?;
    let forest = LoopForest::compute(&program.graph, program.graph.entry);
    let mut env = Env::for_program(program);
    let prof = profile::profile(program, &forest, &mut env, config.profile_fuel)?;
    let selection = select_loops(program, &forest, &prof, config.dep, &config.selection);

    let mut working = program.clone();
    // Shared-variable region (created even if unused by some loops; 8KB
    // is ample for every workload's demoted scalars).
    let shared_region = if selection.selected.is_empty() {
        None
    } else {
        let id = RegionId(working.regions.len() as u32);
        working.regions.push(RegionDecl {
            name: "__shared_vars".into(),
            size: 8192,
            elem: Ty::I64,
        });
        Some(id)
    };

    let mut plans = Vec::new();
    let mut next_slot: i64 = 0;
    let mut next_seg_id: u32 = 0;
    for &idx in &selection.selected {
        let lp = forest.loops[idx].lp.clone();
        let estimate = selection
            .candidates
            .iter()
            .find(|c| c.loop_idx == idx)
            .expect("selected loops have estimates");
        let scratch = working.clone();
        match transform_loop(
            scratch,
            &lp,
            config,
            shared_region.expect("region exists when loops selected"),
            &mut next_slot,
            &mut next_seg_id,
            estimate,
            plans.len(),
        ) {
            Ok((transformed, plan)) => {
                working = transformed;
                plans.push(plan);
            }
            Err(_) => {
                // Transformation discovered an obstruction the estimate
                // missed (e.g. an untaggable shared access); leave the
                // loop sequential.
            }
        }
    }

    debug_assert_eq!(working.validate(), Ok(()));
    let sync_insts = working.sync_inst_count();
    let added_insts = working
        .graph
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| i.is_added())
        .count();
    let seg_total: usize = plans.iter().map(|p| p.segments.len()).sum();
    let mean_segment_size = if seg_total == 0 {
        0.0
    } else {
        let mut sum = 0usize;
        for plan in &plans {
            let lp = NaturalLoop {
                header: plan.header,
                latches: vec![],
                blocks: plan.blocks.clone(),
                exits: BTreeSet::new(),
            };
            for seg in &plan.segments {
                sum += placement::segment_region_size(&working, &lp, seg.id);
            }
        }
        sum as f64 / seg_total as f64
    };

    let stats = CompileStats {
        coverage: selection.coverage,
        candidates: selection.candidates.len() + selection.rejected.len(),
        selected: plans.len(),
        segments: seg_total,
        sync_insts,
        added_insts,
        mean_segment_size,
    };
    Ok(CompiledProgram {
        program: working,
        plans,
        stats,
        version: config.version,
        selection,
    })
}

/// Errors internal to one loop's transformation (the loop is skipped).
#[derive(Debug)]
#[allow(dead_code)]
enum LoopTransformError {
    Demote(demote::DemoteError),
    Segment(segments::SegmentError),
    Shape,
}

impl From<demote::DemoteError> for LoopTransformError {
    fn from(e: demote::DemoteError) -> Self {
        LoopTransformError::Demote(e)
    }
}

impl From<segments::SegmentError> for LoopTransformError {
    fn from(e: segments::SegmentError) -> Self {
        LoopTransformError::Segment(e)
    }
}

#[allow(clippy::too_many_arguments)]
fn transform_loop(
    mut p: Program,
    lp: &NaturalLoop,
    config: &HccConfig,
    shared_region: RegionId,
    next_slot: &mut i64,
    next_seg_id: &mut u32,
    estimate: &CandidateEstimate,
    plan_index: usize,
) -> Result<(Program, LoopPlan), LoopTransformError> {
    let counted = recognize_counted_loop(&p.graph, lp).ok_or(LoopTransformError::Shape)?;

    // --- Classify registers ---
    let classes = classify_registers(&p.graph, lp);
    let mut inductions: Vec<InductionPlan> = Vec::new();
    let mut poly2: Vec<Poly2Plan> = Vec::new();
    let mut reductions: Vec<ReductionPlan> = Vec::new();
    let mut must_comm: Vec<Reg> = Vec::new();
    let mut liveouts: Vec<LiveOutPlan> = Vec::new();

    // First pass: affine inductions (poly2 validation needs them).
    for c in &classes {
        if let Some(PredictableKind::InductionAffine { step }) = c.predictable {
            let init_copy = fresh_reg(&mut p);
            inductions.push(InductionPlan {
                reg: c.reg,
                init_copy,
                step,
            });
        }
    }
    let affine_of = |r: Reg, inds: &[InductionPlan]| inds.iter().find(|i| i.reg == r).copied();

    for c in &classes {
        match c.predictable {
            Some(PredictableKind::InductionAffine { .. }) => {
                if c.live_out {
                    liveouts.push(LiveOutPlan {
                        reg: c.reg,
                        resolve: LiveOutResolve::InductionFinal,
                    });
                }
            }
            Some(PredictableKind::InductionPoly2) => {
                // Re-derive the step register from the update site.
                let step_reg = find_poly2_step(&p, lp, c.reg);
                match step_reg.and_then(|s| affine_of(s, &inductions).map(|i| (s, i.step))) {
                    Some((s, dd)) => {
                        let init_copy = fresh_reg(&mut p);
                        poly2.push(Poly2Plan {
                            reg: c.reg,
                            init_copy,
                            step_reg: s,
                            step_step: dd,
                        });
                        if c.live_out {
                            liveouts.push(LiveOutPlan {
                                reg: c.reg,
                                resolve: LiveOutResolve::InductionFinal,
                            });
                        }
                    }
                    None => must_comm.push(c.reg),
                }
            }
            Some(PredictableKind::Reduction { op }) => match reduction_identity(op) {
                Some(identity) => {
                    reductions.push(ReductionPlan {
                        reg: c.reg,
                        op,
                        identity,
                    });
                    if c.live_out {
                        liveouts.push(LiveOutPlan {
                            reg: c.reg,
                            resolve: LiveOutResolve::ReductionCombine,
                        });
                    }
                }
                None => must_comm.push(c.reg),
            },
            Some(PredictableKind::NotUsedInLoop) | Some(PredictableKind::SetBeforeUse) => {
                if c.live_out {
                    liveouts.push(LiveOutPlan {
                        reg: c.reg,
                        resolve: LiveOutResolve::LastWriter,
                    });
                }
            }
            None => must_comm.push(c.reg),
        }
    }

    // --- Demote communicated registers ---
    let demotion =
        demote::demote_registers(&mut p, &lp.blocks, &must_comm, shared_region, next_slot)?;

    // --- Seed slots on entry edges; read them back on the exit edge ---
    let preds = p.graph.predecessors();
    let entry_preds: Vec<BlockId> = preds[lp.header.index()]
        .iter()
        .copied()
        .filter(|b| !lp.blocks.contains(b))
        .collect();
    for pred in entry_preds {
        let nb = p.graph.split_edge(pred, lp.header);
        let block = p.graph.block_mut(nb);
        for (&reg, &slot) in &demotion.slots {
            block.insts.push(Inst::Store {
                src: reg.into(),
                addr: AddrExpr::region(shared_region, slot),
                ty: demotion.tys[&reg],
                shared: None,
                origin: helix_ir::InstOrigin::Added,
            });
        }
    }
    // Exit edge: header -> first successor outside the loop.
    let exit_target = p
        .graph
        .block(lp.header)
        .term
        .successors()
        .into_iter()
        .find(|s| !lp.blocks.contains(s))
        .ok_or(LoopTransformError::Shape)?;
    let exit_resume = p.graph.split_edge(lp.header, exit_target);
    {
        let block = p.graph.block_mut(exit_resume);
        for (&reg, &slot) in &demotion.slots {
            block.insts.push(Inst::Load {
                dst: reg,
                addr: AddrExpr::region(shared_region, slot),
                ty: demotion.tys[&reg],
                shared: None,
                origin: helix_ir::InstOrigin::Added,
            });
        }
    }

    // --- Re-analyze the transformed loop and form segments ---
    let pts = PointsTo::analyze(&p, config.dep.tier);
    let deps = analyze_loop(&p, lp, config.dep, &pts);
    let segment_plans = segments::assign_segments(&mut p, lp, &deps, config.split, next_seg_id)?;

    // --- Place wait/signal ---
    // Each segment's placement may split edges, and the new blocks belong
    // to the loop; later segments must see them as loop members or their
    // reachability analysis treats the split edge as a loop exit and
    // skips bypass synchronization (a shared access in the other branch
    // of a guard would then run outside its window).
    let mut loop_blocks = lp.blocks.clone();
    let mut sync_lp = lp.clone();
    for seg in &segment_plans {
        let added = placement::place_sync(&mut p, &sync_lp, seg.id, config.placement);
        loop_blocks.extend(added.iter().copied());
        sync_lp.blocks.extend(added);
    }

    // --- Per-iteration re-computation prologue ---
    let iter_reg = fresh_reg(&mut p);
    let tmp = fresh_reg(&mut p);
    let mut prologue = Vec::new();
    for ind in &inductions {
        if ind.step == 1 {
            prologue.push(Inst::Bin {
                dst: ind.reg,
                op: BinOp::Add,
                lhs: ind.init_copy.into(),
                rhs: iter_reg.into(),
            });
        } else {
            prologue.push(Inst::Bin {
                dst: tmp,
                op: BinOp::Mul,
                lhs: iter_reg.into(),
                rhs: Operand::imm(ind.step),
            });
            prologue.push(Inst::Bin {
                dst: ind.reg,
                op: BinOp::Add,
                lhs: ind.init_copy.into(),
                rhs: tmp.into(),
            });
        }
    }
    let tmp2 = fresh_reg(&mut p);
    for p2 in &poly2 {
        let s_init = inductions
            .iter()
            .find(|i| i.reg == p2.step_reg)
            .expect("poly2 validated against inductions")
            .init_copy;
        // r = r0 + k*s0 + dd*k(k-1)/2
        prologue.extend([
            Inst::Bin {
                dst: tmp,
                op: BinOp::Sub,
                lhs: iter_reg.into(),
                rhs: Operand::imm(1),
            },
            Inst::Bin {
                dst: tmp,
                op: BinOp::Mul,
                lhs: tmp.into(),
                rhs: iter_reg.into(),
            },
            Inst::Bin {
                dst: tmp,
                op: BinOp::Shr,
                lhs: tmp.into(),
                rhs: Operand::imm(1),
            },
            Inst::Bin {
                dst: tmp,
                op: BinOp::Mul,
                lhs: tmp.into(),
                rhs: Operand::imm(p2.step_step),
            },
            Inst::Bin {
                dst: tmp2,
                op: BinOp::Mul,
                lhs: iter_reg.into(),
                rhs: s_init.into(),
            },
            Inst::Bin {
                dst: tmp2,
                op: BinOp::Add,
                lhs: tmp2.into(),
                rhs: tmp.into(),
            },
            Inst::Bin {
                dst: p2.reg,
                op: BinOp::Add,
                lhs: p2.init_copy.into(),
                rhs: tmp2.into(),
            },
        ]);
    }
    let iteration_entry = p.graph.push_block(helix_ir::Block {
        label: Some(format!("par_prologue_{plan_index}")),
        insts: prologue,
        term: Terminator::Jump(lp.header),
    });
    loop_blocks.insert(iteration_entry);

    debug_assert_eq!(p.validate(), Ok(()));

    let plan = LoopPlan {
        name: format!("parallel_loop_{plan_index}"),
        header: lp.header,
        blocks: loop_blocks,
        iteration_entry,
        iter_reg,
        counter: counted.counter,
        step: counted.step,
        bound: counted.bound,
        segments: segment_plans,
        inductions,
        poly2,
        reductions,
        liveouts,
        exit_resume,
        shared_region: if demotion.slots.is_empty() {
            None
        } else {
            Some(shared_region)
        },
        est_speedup: estimate.est_speedup,
        coverage: estimate.coverage,
        insts_per_iter: estimate.insts_per_iter,
    };
    Ok((p, plan))
}

/// Find the step register `s` of a poly2 update `r = r + s` inside `lp`.
fn find_poly2_step(p: &Program, lp: &NaturalLoop, r: Reg) -> Option<Reg> {
    for &b in &lp.blocks {
        for inst in &p.graph.block(b).insts {
            if let Inst::Bin {
                dst,
                op: BinOp::Add,
                lhs,
                rhs,
            } = inst
            {
                if *dst == r {
                    match (lhs, rhs) {
                        (Operand::Reg(a), Operand::Reg(s)) if *a == r && *s != r => {
                            return Some(*s)
                        }
                        (Operand::Reg(s), Operand::Reg(a)) if *a == r && *s != r => {
                            return Some(*s)
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::interp::run_to_completion;
    use helix_ir::{AddrExpr, ProgramBuilder};

    /// A program with one hot loop carrying a memory dependence plus an
    /// unpredictable register.
    fn hot_program() -> Program {
        let mut b = ProgramBuilder::new("hot");
        let cell = b.region("cell", 64, Ty::I64);
        let data = b.region("data", 1 << 16, Ty::I64);
        let out = b.region("out", 64, Ty::I64);
        let state = b.reg();
        b.const_i(state, 1);
        b.counted_loop(0, 500, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            b.alu_chain(x, 10);
            // Unpredictable register chain.
            let c = b.reg();
            b.bin(c, BinOp::And, x, 7i64);
            b.if_then(c, |b| {
                b.bin(state, BinOp::Xor, state, x);
            });
            // Shared memory accumulator.
            let t = b.reg();
            b.load(t, AddrExpr::region(cell, 0), Ty::I64);
            b.bin(t, BinOp::Add, t, x);
            b.store(t, AddrExpr::region(cell, 0), Ty::I64);
            b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        });
        b.store(state, AddrExpr::region(out, 0), Ty::I64);
        b.finish()
    }

    #[test]
    fn v3_compiles_hot_loop() {
        let p = hot_program();
        let compiled = compile(&p, &HccConfig::v3(16)).unwrap();
        assert_eq!(compiled.plans.len(), 1);
        let plan = &compiled.plans[0];
        assert!(!plan.segments.is_empty());
        assert!(plan.inductions.iter().any(|i| i.reg == plan.counter));
        assert!(compiled.stats.sync_insts > 0);
        assert!(compiled.stats.coverage > 0.8);
        assert!(compiled.program.validate().is_ok());
    }

    /// The transformed program, run sequentially, computes exactly what
    /// the original does.
    #[test]
    fn transform_preserves_sequential_semantics() {
        let p = hot_program();
        let mut env_ref = Env::for_program(&p);
        run_to_completion(&p, &mut env_ref).unwrap();

        for config in [HccConfig::v1(16), HccConfig::v2(16), HccConfig::v3(16)] {
            let compiled = compile(&p, &config).unwrap();
            let mut env = Env::for_program(&compiled.program);
            run_to_completion(&compiled.program, &mut env).unwrap();
            // Compare the original static regions' contents.
            for (i, _) in p.regions.iter().enumerate() {
                let a = env_ref.mem.region(helix_ir::RegionId(i as u32));
                let c = env.mem.region(helix_ir::RegionId(i as u32));
                assert_eq!(a, c, "region {i} differs under {}", config.version);
            }
        }
    }

    #[test]
    fn v1_merges_into_single_segment() {
        let mut b = ProgramBuilder::new("two_cells");
        let ca = b.region("a", 64, Ty::I64);
        let cb = b.region("b", 64, Ty::I64);
        b.counted_loop(0, 400, 1, |b, i| {
            let x = b.reg();
            b.alu_chain(x, 12);
            let t = b.reg();
            b.load(t, AddrExpr::region(ca, 0), Ty::I64);
            b.bin(t, BinOp::Add, t, i);
            b.store(t, AddrExpr::region(ca, 0), Ty::I64);
            let u = b.reg();
            b.load(u, AddrExpr::region(cb, 0), Ty::I64);
            b.bin(u, BinOp::Xor, u, i);
            b.store(u, AddrExpr::region(cb, 0), Ty::I64);
        });
        let p = b.finish();
        // Force selection to accept despite the serial segments by using
        // v3-style selection with v1 splitting: compare plans directly.
        let mut cfg1 = HccConfig::v1(16);
        cfg1.selection.sync_cost = 4.0; // make it profitable so we can see the split
        let mut cfg3 = HccConfig::v3(16);
        cfg3.selection.sync_cost = 4.0;
        let c1 = compile(&p, &cfg1).unwrap();
        let c3 = compile(&p, &cfg3).unwrap();
        if c1.plans.len() == 1 {
            assert_eq!(c1.plans[0].segments.len(), 1, "v1 merges segments");
        }
        assert_eq!(c3.plans.len(), 1);
        assert!(
            c3.plans[0].segments.len() >= 2,
            "v3 splits disjoint shared data"
        );
    }

    #[test]
    fn reduction_loop_has_no_segments() {
        let mut b = ProgramBuilder::new("red");
        let data = b.region("data", 1 << 16, Ty::I64);
        let out = b.region("out", 64, Ty::I64);
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 800, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            b.alu_chain(x, 6);
            b.bin(acc, BinOp::Add, acc, x);
        });
        b.store(acc, AddrExpr::region(out, 0), Ty::I64);
        let p = b.finish();
        let compiled = compile(&p, &HccConfig::v3(16)).unwrap();
        assert_eq!(compiled.plans.len(), 1);
        let plan = &compiled.plans[0];
        assert!(plan.segments.is_empty(), "pure reduction needs no segment");
        assert_eq!(plan.reductions.len(), 1);
        assert!(plan
            .liveouts
            .iter()
            .any(|l| l.resolve == LiveOutResolve::ReductionCombine));
    }

    #[test]
    fn sequential_program_compiles_to_no_plans() {
        let mut b = ProgramBuilder::new("seq");
        let r = b.reg();
        b.const_i(r, 1);
        b.alu_chain(r, 20);
        let p = b.finish();
        let compiled = compile(&p, &HccConfig::v3(16)).unwrap();
        assert!(compiled.plans.is_empty());
        assert_eq!(compiled.stats.coverage, 0.0);
    }
}
