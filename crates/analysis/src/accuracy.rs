//! Static-vs-dynamic dependence accuracy (the Fig. 2 experiment).

use crate::deps::{analyze_loop, DepConfig, LoopDeps};
use crate::ground_truth::DynamicLoopDeps;
use crate::pts::PointsTo;
use crate::tier::AliasTier;
use helix_ir::cfg::NaturalLoop;
use helix_ir::{InstSite, Program};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Accuracy of one analysis configuration on one loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopAccuracy {
    /// Dependences the static analysis reported.
    pub identified: usize,
    /// Of those, how many were observed at runtime.
    pub actual: usize,
    /// Dependences observed at runtime but *not* reported (must be zero
    /// for a sound analysis).
    pub missed: usize,
}

impl LoopAccuracy {
    /// `actual / identified`; loops with no identified dependences are
    /// perfectly analyzed (accuracy 1).
    pub fn accuracy(&self) -> f64 {
        if self.identified == 0 {
            1.0
        } else {
            self.actual as f64 / self.identified as f64
        }
    }

    /// Whether every actual dependence was identified.
    pub fn sound(&self) -> bool {
        self.missed == 0
    }
}

/// Compare a static dependence result against dynamic ground truth.
pub fn compare(static_deps: &LoopDeps, dynamic: &DynamicLoopDeps) -> LoopAccuracy {
    let reported: BTreeSet<(InstSite, InstSite)> = static_deps.pair_set();
    let actual_hits = dynamic
        .pairs
        .iter()
        .filter(|p| reported.contains(*p))
        .count();
    LoopAccuracy {
        identified: reported.len(),
        actual: actual_hits,
        missed: dynamic.pairs.len() - actual_hits,
    }
}

/// Accuracy of every tier on a set of loops (the Fig. 2 sweep).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierSweep {
    /// Mean accuracy per tier, in [`AliasTier::ALL`] order.
    pub mean_accuracy: Vec<f64>,
    /// Per-loop, per-tier accuracies.
    pub per_loop: Vec<Vec<LoopAccuracy>>,
}

/// Run the full tier sweep for `loops` of `program` against the supplied
/// dynamic ground truths (one per loop, same order).
///
/// The affine (induction) refinement stays enabled throughout, matching
/// the paper's setup where VLLPA is the starting point of a modern
/// compiler's memory analysis.
///
/// # Panics
///
/// Panics if `loops` and `dynamics` lengths differ.
pub fn tier_sweep(
    program: &Program,
    loops: &[NaturalLoop],
    dynamics: &[DynamicLoopDeps],
) -> TierSweep {
    assert_eq!(loops.len(), dynamics.len(), "one ground truth per loop");
    let mut per_loop: Vec<Vec<LoopAccuracy>> = vec![Vec::new(); loops.len()];
    let mut mean_accuracy = Vec::new();
    for tier in AliasTier::ALL {
        let pts = PointsTo::analyze(program, tier);
        let config = DepConfig {
            tier,
            affine_aware: true,
        };
        let mut sum = 0.0;
        for (i, lp) in loops.iter().enumerate() {
            let deps = analyze_loop(program, lp, config, &pts);
            let acc = compare(&deps, &dynamics[i]);
            sum += acc.accuracy();
            per_loop[i].push(acc);
        }
        mean_accuracy.push(if loops.is_empty() {
            1.0
        } else {
            sum / loops.len() as f64
        });
    }
    TierSweep {
        mean_accuracy,
        per_loop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::observe_loop_deps;
    use helix_ir::cfg::LoopForest;
    use helix_ir::interp::Env;
    use helix_ir::{AddrExpr, BinOp, Intrinsic, Operand, ProgramBuilder, Ty};

    /// A loop with one real dependence and structure that confuses weak
    /// tiers: accuracy must be monotone and reach 1.0 at the full tier.
    #[test]
    fn accuracy_monotone_over_tiers() {
        let mut b = ProgramBuilder::new("acc_test");
        let hist = b.region("hist", 4096, Ty::I64);
        let data = b.region("data", 8192, Ty::I64);
        b.counted_loop(0, 200, 1, |b, i| {
            // Real dependence: histogram cell updated via hash.
            let [x, h, cell] = b.regs();
            b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            b.call(Some(h), Intrinsic::PureHash, vec![Operand::Reg(x)]);
            b.bin(h, BinOp::And, h, 63i64);
            b.load(cell, AddrExpr::region_indexed(hist, h, 8, 0), Ty::I64);
            b.bin(cell, BinOp::Add, cell, 1i64);
            b.store(cell, AddrExpr::region_indexed(hist, h, 8, 0), Ty::I64);
            // False-dependence bait: private per-iteration slot in data.
            b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        });
        let p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let mut env = Env::for_program(&p);
        let dynamic = observe_loop_deps(&p, &lp, &mut env, 10_000_000).unwrap();
        assert!(!dynamic.pairs.is_empty(), "histogram collisions occur");

        let sweep = tier_sweep(
            &p,
            std::slice::from_ref(&lp),
            std::slice::from_ref(&dynamic),
        );
        let acc = &sweep.mean_accuracy;
        assert_eq!(acc.len(), 5);
        for w in acc.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "accuracy must not decrease across tiers: {acc:?}"
            );
        }
        assert!(
            acc[4] > acc[0],
            "full tier strictly better than baseline: {acc:?}"
        );
        // Every tier must be sound.
        for per_tier in &sweep.per_loop[0] {
            assert!(per_tier.sound());
        }
    }

    #[test]
    fn zero_identified_is_perfect_accuracy() {
        let a = LoopAccuracy {
            identified: 0,
            actual: 0,
            missed: 0,
        };
        assert_eq!(a.accuracy(), 1.0);
        assert!(a.sound());
    }
}
