//! Perf-regression gates: compare fresh measurements against committed
//! baselines and fail the build on disproportionate drops.
//!
//! **Throughput mode** (default) compares a fresh `bench_sim` run
//! against `BENCH_sim.json`:
//!
//! ```text
//! cargo run --release -p helix-bench --bin bench_sim -- fresh.json
//! cargo run --release -p helix-bench --bin perf_gate -- BENCH_sim.json fresh.json
//! ```
//!
//! Absolute `cycles_per_sec` numbers differ between machines, so this
//! mode normalizes: per (workload, config) pair it computes the
//! fresh/baseline throughput ratio, divides every ratio by the median
//! ratio (cancelling uniform machine-speed differences), and fails if
//! any pair's *normalized* ratio drops below `1 - tolerance` (default
//! 30%) — i.e. if some workload slowed down disproportionately to the
//! rest. A uniform slowdown cannot hide behind the median either: the
//! raw median itself must stay above an order-of-magnitude floor of the
//! baseline, which is lenient across runner generations but catches an
//! accidental return to the naive cycle loop. When the baseline carries
//! a `campaign_full` row (full-profile campaign wall-clock, naive
//! per-cell tree vs lane-batched), the fresh run must carry one too and
//! its measured speedup must stay above an absolute 3x floor.
//!
//! **Scenario mode** (`--scenarios`) compares campaign reports — the
//! per-scenario HELIX-RC *speedups* from `generations` rows — against
//! the committed `BENCH_scenarios.json`:
//!
//! ```text
//! helix campaign campaigns/smoke.toml --out fresh_campaign.json
//! perf_gate --scenarios BENCH_scenarios.json fresh_campaign.json
//! ```
//!
//! Speedups are ratios of simulated cycle counts, so they are
//! deterministic and machine-independent: no median normalization, just
//! a per-scenario tolerance (default 20%) that catches any code change
//! degrading what HELIX-RC achieves on a workload. Scenarios only in
//! the fresh report are listed as new (commit a refreshed baseline to
//! start gating them); scenarios missing from the fresh report fail.
//!
//! Scenario mode also gates two fractions that speedups alone cannot
//! see: `comm_frac` (share of cross-core traffic covered by ring-cache
//! proactive circulation, from `coupled_vs_ring` rows) and `bound_frac`
//! (achieved fraction of the coverage-derived Amdahl bound, from the
//! report's `derived` rows). These are compared by *absolute* drift in
//! either direction — a fraction moving is a behavioural change even
//! when speedups survive — under `--frac-tolerance` (default 0.10).
//! Finally, any entry in the fresh report's `failures` array (cells the
//! resilient campaign runtime isolated instead of completing) fails the
//! gate outright: a crashed or budget-blown cell is never a pass.

use helix_bench::json::{parse, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Normalized per-pair regression tolerance (`--tolerance` overrides).
const DEFAULT_TOLERANCE: f64 = 0.30;
/// Per-scenario speedup tolerance for `--scenarios` mode.
const DEFAULT_SCENARIO_TOLERANCE: f64 = 0.20;
/// Absolute drift tolerance for comm_frac / bound_frac in `--scenarios`
/// mode (`--frac-tolerance` overrides).
const DEFAULT_FRAC_TOLERANCE: f64 = 0.10;
/// Floor on the raw median fresh/baseline ratio: the whole suite an
/// order of magnitude slower means the fast path itself regressed.
const MEDIAN_FLOOR: f64 = 0.1;
/// Minimum end-to-end full-profile campaign speedup (naive per-cell
/// tree execution vs lane-batched decode-once execution) from the
/// `campaign_full` row. Wall-clock ratios wobble with machine load, so
/// this is an absolute floor rather than a baseline-relative ratio —
/// and it is calibrated to the slowest host class we gate on: the
/// naive tree baseline is disproportionately faster on single-CPU
/// boxes (less parallel-cell contention), so identical code that
/// measures ~4.8x on a many-core host measures ~2.9x there (observed
/// run-to-run band 2.7–3.4). The floor sits just under that band.
const CAMPAIGN_FULL_MIN_SPEEDUP: f64 = 2.5;

fn load_rows(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: no 'workloads' array"))?;
    let mut out = BTreeMap::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: workload row without 'name'"))?;
        let config = row
            .get("config")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: workload row without 'config'"))?;
        let cps = row
            .get("fast_cycles_per_sec")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{path}: {name}/{config} missing fast_cycles_per_sec"))?;
        if cps <= 0.0 {
            return Err(format!("{path}: {name}/{config} non-positive throughput"));
        }
        out.insert(format!("{name} @ {config}"), cps);
    }
    if out.is_empty() {
        return Err(format!("{path}: empty workload table"));
    }
    Ok(out)
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// Per-config `cycles_per_sec` medians from a `bench_sim` report's
/// `config_medians` object (absent in pre-medians baselines).
fn load_config_medians(path: &str) -> Result<Option<BTreeMap<String, f64>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(obj) = doc.get("config_medians") else {
        return Ok(None);
    };
    let entries = obj
        .as_object()
        .ok_or_else(|| format!("{path}: config_medians is not an object"))?;
    let mut out = BTreeMap::new();
    for (config, v) in entries {
        let m = v
            .as_num()
            .ok_or_else(|| format!("{path}: config_medians.{config} is not a number"))?;
        if m <= 0.0 {
            return Err(format!("{path}: config_medians.{config} non-positive"));
        }
        out.insert(config.clone(), m);
    }
    Ok(Some(out))
}

/// The `campaign_full` end-to-end speedup from a `bench_sim` report,
/// or `None` when the report predates the row.
fn load_campaign_full(path: &str) -> Result<Option<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(row) = doc.get("campaign_full") else {
        return Ok(None);
    };
    let speedup = row
        .get("speedup")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{path}: campaign_full row without numeric 'speedup'"))?;
    if speedup <= 0.0 {
        return Err(format!("{path}: campaign_full non-positive speedup"));
    }
    Ok(Some(speedup))
}

fn run(baseline_path: &str, fresh_path: &str, tolerance: f64) -> Result<(), String> {
    let baseline = load_rows(baseline_path)?;
    let fresh = load_rows(fresh_path)?;

    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (key, base_cps) in &baseline {
        match fresh.get(key) {
            Some(fresh_cps) => ratios.push((key.clone(), fresh_cps / base_cps)),
            None => return Err(format!("fresh run is missing pair '{key}'")),
        }
    }
    let m = median(ratios.iter().map(|(_, r)| *r).collect());
    println!(
        "perf gate: {} pairs, median fresh/baseline throughput ratio {m:.3} \
         (normalized tolerance {:.0}%)",
        ratios.len(),
        100.0 * tolerance
    );

    let mut failures = Vec::new();
    for (key, ratio) in &ratios {
        let normalized = ratio / m;
        let flag = if normalized < 1.0 - tolerance {
            failures.push(key.clone());
            "  << REGRESSION"
        } else {
            ""
        };
        println!("  {key:<40} ratio {ratio:7.3}  normalized {normalized:6.3}{flag}");
    }

    if m < MEDIAN_FLOOR {
        return Err(format!(
            "median throughput ratio {m:.3} is below the {MEDIAN_FLOOR} order-of-magnitude \
             floor: the fast path regressed across the whole suite"
        ));
    }

    // Per-config medians (sequential / conventional / helix-rc), gated
    // with the same normalization: a drop confined to one machine shape
    // — above all the dominant helix-rc configuration — must not hide
    // behind healthy per-pair numbers elsewhere.
    if let Some(base_medians) = load_config_medians(baseline_path)? {
        let fresh_medians = load_config_medians(fresh_path)?
            .ok_or_else(|| format!("{fresh_path}: baseline has config_medians but fresh lacks"))?;
        for (config, base_m) in &base_medians {
            let fresh_m = fresh_medians
                .get(config)
                .ok_or_else(|| format!("fresh run is missing config median '{config}'"))?;
            let normalized = (fresh_m / base_m) / m;
            let flag = if normalized < 1.0 - tolerance {
                failures.push(format!("median[{config}]"));
                "  << REGRESSION"
            } else {
                ""
            };
            println!(
                "  median[{config:<15}] {base_m:>12.0} -> {fresh_m:>12.0}  \
                 normalized {normalized:6.3}{flag}"
            );
        }
    }

    // The full-profile campaign row: once a baseline carries it, every
    // fresh run must carry it too, and the measured batched-vs-naive
    // speedup must clear the absolute floor. This is the end-to-end
    // guarantee that lane batching keeps paying for itself — a per-pair
    // throughput gate cannot see a lost decode-dedup.
    match (
        load_campaign_full(baseline_path)?,
        load_campaign_full(fresh_path)?,
    ) {
        (Some(base_s), Some(fresh_s)) => {
            let flag = if fresh_s < CAMPAIGN_FULL_MIN_SPEEDUP {
                failures.push(format!(
                    "campaign_full speedup {fresh_s:.2}x below the \
                     {CAMPAIGN_FULL_MIN_SPEEDUP:.1}x floor"
                ));
                "  << REGRESSION"
            } else {
                ""
            };
            println!(
                "  campaign_full speedup {base_s:.2}x -> {fresh_s:.2}x  \
                 (floor {CAMPAIGN_FULL_MIN_SPEEDUP:.1}x){flag}"
            );
        }
        (Some(_), None) => {
            failures.push("campaign_full row missing from fresh report".to_string());
        }
        (None, Some(fresh_s)) => {
            println!(
                "  campaign_full speedup {fresh_s:.2}x (new row; refresh {baseline_path} to gate it)"
            );
        }
        (None, None) => {}
    }

    if !failures.is_empty() {
        return Err(format!(
            "{} gate failure(s): {}",
            failures.len(),
            failures.join(", ")
        ));
    }
    println!("perf gate: ok");
    Ok(())
}

/// Extract `"<scenario> @ <cores> cores" -> helix_speedup` from a
/// campaign report's `generations` rows.
fn load_scenario_speedups(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("harness").and_then(Json::as_str) != Some("campaign") {
        return Err(format!(
            "{path}: not a campaign report (harness != \"campaign\")"
        ));
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: no 'rows' array"))?;
    let mut out = BTreeMap::new();
    for row in rows {
        if row.get("experiment").and_then(Json::as_str) != Some("generations") {
            continue;
        }
        let scenario = row
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: generations row without 'scenario'"))?;
        let cores = row
            .get("cores")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{path}: {scenario}: row without 'cores'"))?;
        let speedup = row
            .get("helix_speedup")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{path}: {scenario}: row without 'helix_speedup'"))?;
        if speedup <= 0.0 {
            return Err(format!("{path}: {scenario}: non-positive speedup"));
        }
        out.insert(format!("{scenario} @ {cores:.0} cores"), speedup);
    }
    if out.is_empty() {
        return Err(format!(
            "{path}: no 'generations' rows (the campaign must include the generations experiment)"
        ));
    }
    Ok(out)
}

/// Extract the behavioural fractions a campaign report carries beyond
/// speedups: `"<scenario> @ <cores> cores" -> comm_frac` from
/// `coupled_vs_ring` rows and `-> bound_frac` from `derived` rows.
/// Either map may be empty (a campaign need not run those experiments).
#[allow(clippy::type_complexity)]
fn load_scenario_fracs(
    path: &str,
) -> Result<(BTreeMap<String, f64>, BTreeMap<String, f64>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut comm = BTreeMap::new();
    if let Some(rows) = doc.get("rows").and_then(Json::as_array) {
        for row in rows {
            if row.get("experiment").and_then(Json::as_str) != Some("coupled_vs_ring") {
                continue;
            }
            let (Some(scenario), Some(cores), Some(frac)) = (
                row.get("scenario").and_then(Json::as_str),
                row.get("cores").and_then(Json::as_num),
                row.get("comm_frac").and_then(Json::as_num),
            ) else {
                continue;
            };
            comm.insert(format!("{scenario} @ {cores:.0} cores"), frac);
        }
    }
    let mut bound = BTreeMap::new();
    if let Some(rows) = doc.get("derived").and_then(Json::as_array) {
        for row in rows {
            let (Some(scenario), Some(cores), Some(frac)) = (
                row.get("scenario").and_then(Json::as_str),
                row.get("cores").and_then(Json::as_num),
                row.get("bound_frac").and_then(Json::as_num),
            ) else {
                continue;
            };
            bound.insert(format!("{scenario} @ {cores:.0} cores"), frac);
        }
    }
    Ok((comm, bound))
}

/// Failed-cell entries from a campaign report's `failures` array (the
/// resilient runtime's per-cell degradations). Absent array -> empty.
fn load_report_failures(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(rows) = doc.get("failures").and_then(Json::as_array) else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for row in rows {
        let scenario = row.get("scenario").and_then(Json::as_str).unwrap_or("?");
        let experiment = row.get("experiment").and_then(Json::as_str).unwrap_or("?");
        let cores = row.get("cores").and_then(Json::as_num).unwrap_or(0.0);
        let kind = row.get("kind").and_then(Json::as_str).unwrap_or("?");
        let message = row.get("message").and_then(Json::as_str).unwrap_or("");
        out.push(format!(
            "{scenario} / {experiment} @ {cores:.0} cores: failed cell ({kind}: {message})"
        ));
    }
    Ok(out)
}

/// Gate one fraction family by absolute drift: keys present in both
/// reports must not move more than `frac_tolerance` in either
/// direction; baseline keys missing from the fresh report fail.
fn gate_fracs(
    label: &str,
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    frac_tolerance: f64,
    failures: &mut Vec<String>,
) {
    for (key, base) in baseline {
        match fresh.get(key) {
            None => failures.push(format!("{label}[{key}]: missing from fresh report")),
            Some(now) => {
                let drift = (now - base).abs();
                let flag = if drift > frac_tolerance {
                    failures.push(format!(
                        "{label}[{key}]: {base:.3} -> {now:.3} (drift {drift:.3})"
                    ));
                    "  << DRIFT"
                } else {
                    ""
                };
                println!("  {label}[{key:<28}] {base:6.3} -> {now:6.3}  drift {drift:6.3}{flag}");
            }
        }
    }
}

/// Per-scenario speedup gate: every baseline scenario's fresh HELIX-RC
/// speedup must stay within `tolerance` of its committed value; comm
/// and bound fractions must not drift; failed cells fail outright.
fn run_scenarios(
    baseline_path: &str,
    fresh_path: &str,
    tolerance: f64,
    frac_tolerance: f64,
) -> Result<(), String> {
    let baseline = load_scenario_speedups(baseline_path)?;
    let fresh = load_scenario_speedups(fresh_path)?;
    println!(
        "scenario gate: {} baseline scenario(s), tolerance {:.0}%, frac tolerance {:.2}",
        baseline.len(),
        100.0 * tolerance,
        frac_tolerance
    );
    let mut failures = Vec::new();
    for cell in load_report_failures(fresh_path)? {
        println!("  {cell}  << FAILED CELL");
        failures.push(cell);
    }
    for (key, base) in &baseline {
        match fresh.get(key) {
            None => failures.push(format!("{key}: missing from fresh report")),
            Some(now) => {
                let ratio = now / base;
                let flag = if ratio < 1.0 - tolerance {
                    failures.push(format!(
                        "{key}: speedup {base:.2}x -> {now:.2}x ({:.0}% drop)",
                        100.0 * (1.0 - ratio)
                    ));
                    "  << REGRESSION"
                } else {
                    ""
                };
                println!("  {key:<32} {base:6.2}x -> {now:6.2}x  ratio {ratio:6.3}{flag}");
            }
        }
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!("  {key:<32} new scenario (not gated; refresh {baseline_path} to gate it)");
        }
    }
    let (base_comm, base_bound) = load_scenario_fracs(baseline_path)?;
    let (fresh_comm, fresh_bound) = load_scenario_fracs(fresh_path)?;
    gate_fracs(
        "comm_frac",
        &base_comm,
        &fresh_comm,
        frac_tolerance,
        &mut failures,
    );
    gate_fracs(
        "bound_frac",
        &base_bound,
        &fresh_bound,
        frac_tolerance,
        &mut failures,
    );
    if !failures.is_empty() {
        return Err(format!(
            "{} gate failure(s):\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    println!("scenario gate: ok");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance: Option<f64> = None;
    let mut frac_tolerance: Option<f64> = None;
    let mut scenarios = false;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" || arg == "--frac-tolerance" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => {
                    if arg == "--tolerance" {
                        tolerance = Some(t);
                    } else {
                        frac_tolerance = Some(t);
                    }
                }
                _ => {
                    eprintln!("perf_gate: {arg} needs a value in [0, 1)");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--scenarios" {
            scenarios = true;
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline, fresh] = paths.as_slice() else {
        eprintln!(
            "usage: perf_gate <baseline.json> <fresh.json> [--tolerance 0.30]\n       \
             perf_gate --scenarios <BENCH_scenarios.json> <fresh_campaign.json> \
             [--tolerance 0.20] [--frac-tolerance 0.10]"
        );
        return ExitCode::from(2);
    };
    let result = if scenarios {
        run_scenarios(
            baseline,
            fresh,
            tolerance.unwrap_or(DEFAULT_SCENARIO_TOLERANCE),
            frac_tolerance.unwrap_or(DEFAULT_FRAC_TOLERANCE),
        )
    } else {
        run(baseline, fresh, tolerance.unwrap_or(DEFAULT_TOLERANCE))
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perf_gate: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
