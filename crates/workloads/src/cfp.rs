//! Synthetic stand-ins for the four SPEC CFP2000 benchmarks (paper §6.1).
//!
//! Like [`crate::cint`], these constructors are thin shims over the
//! pinned declarative specs in [`crate::spec_builtin`]: the TOML files
//! under `scenarios/` are the canonical definitions, and the workspace
//! tests pin spec-generated programs to the cycle counts these names
//! have always produced.
//!
//! The FP programs carry the paper's CFP characteristics: near-total
//! HCCv2 coverage (Table 1) and overheads dominated by low trip counts
//! and iteration imbalance rather than communication (Fig. 12).

use crate::common::Scale;
use crate::gen::generate;
use crate::spec_builtin;
use helix_ir::Program;

fn lower(spec: crate::ScenarioSpec, scale: Scale) -> Program {
    generate(&spec, scale).unwrap_or_else(|e| panic!("built-in spec {}: {e}", spec.name))
}

/// 183.equake — seismic element kernels: a serial driver around a
/// very-low-trip floating-point loop (87.7% low-trip overhead).
pub fn equake(scale: Scale) -> Program {
    lower(spec_builtin::equake_spec(), scale)
}

/// 179.art — adaptive resonance matching: in-place normalization with an
/// `FMax` match reduction.
pub fn art(scale: Scale) -> Program {
    lower(spec_builtin::art_spec(), scale)
}

/// 188.ammp — molecular-dynamics pair forces with triangular (poly2)
/// induction indexing.
pub fn ammp(scale: Scale) -> Program {
    lower(spec_builtin::ammp_spec(), scale)
}

/// 177.mesa — span rasterization where one span in sixteen takes the
/// heavy texture path (iteration imbalance).
pub fn mesa(scale: Scale) -> Program {
    lower(spec_builtin::mesa_spec(), scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::interp::{run_to_completion, Env};
    use helix_ir::Ty;

    #[test]
    fn all_cfp_programs_validate_and_run() {
        for p in [
            equake(Scale::Test),
            art(Scale::Test),
            ammp(Scale::Test),
            mesa(Scale::Test),
        ] {
            assert!(p.validate().is_ok(), "{}", p.name);
            let mut env = Env::for_program(&p);
            let t = run_to_completion(&p, &mut env).expect(&p.name);
            assert!(
                t.dyn_insts > 10_000,
                "{} too small: {}",
                p.name,
                t.dyn_insts
            );
        }
    }

    #[test]
    fn art_best_match_is_finite() {
        let p = art(Scale::Test);
        let mut env = Env::for_program(&p);
        run_to_completion(&p, &mut env).unwrap();
        // out region is the last-declared region before fills; find by
        // scanning program regions.
        let out_idx = p.regions.iter().position(|r| r.name == "out").unwrap();
        let base = env.mem.base_of(helix_ir::RegionId(out_idx as u32));
        let v = env.mem.load(base, Ty::F64).unwrap().as_float();
        assert!(v.is_finite() && v > 0.0);
    }
}
