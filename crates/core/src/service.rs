//! Campaign-as-a-service: a resident `helix serve` process on a local
//! Unix-domain socket.
//!
//! The service accepts concurrent connections; each connection streams
//! newline-delimited [`api`] requests and receives one response line
//! per request (see [`api::encode_request`] /
//! [`api::decode_response`]). All submissions execute through the same
//! [`api::execute`] path the CLI uses, with two server-side policies
//! layered on top:
//!
//! * **One journal, always resumed.** Every run is forced onto the
//!   service's journal with `resume = true`, so a resubmitted campaign
//!   (or scenario) is answered from journaled cells without simulating
//!   — the response's `stats.journal_hits` counter proves it.
//! * **Bounded workers, single-flight dedup.** At most `workers`
//!   requests simulate at once; identical in-flight submissions are
//!   held until the first finishes, then answered from its freshly
//!   journaled cells. N concurrent clients submitting the same
//!   campaign get N byte-identical reports from one execution.
//!
//! A malformed or unknown request yields a typed
//! [`Response::Error`] line and the connection — and the server — stay
//! up. [`Request::Shutdown`] is acknowledged, then the accept loop
//! drains in-flight work and
//! removes the socket. Protocol details live in `docs/SERVICE.md`.

use crate::api::{self, Request, Response, ServiceStatus};
use crate::error::{ErrorKind, HelixError};
use crate::resilient::{fnv1a, panic_message, Journal, FNV_OFFSET};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Configuration of a `helix serve` instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Path of the Unix-domain socket to listen on. Created on start,
    /// removed on shutdown.
    pub socket: PathBuf,
    /// Journal directory answering repeat submissions. Defaults to
    /// `<socket>.journal`.
    pub journal: PathBuf,
    /// Maximum number of requests simulating concurrently.
    pub workers: usize,
}

impl ServeOptions {
    /// Options for a socket path, with the journal defaulting to
    /// `<socket>.journal` alongside it and a worker per core.
    pub fn new(socket: impl Into<PathBuf>) -> ServeOptions {
        let socket = socket.into();
        let journal = PathBuf::from(format!("{}.journal", socket.display()));
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServeOptions {
            socket,
            journal,
            workers,
        }
    }
}

/// Running totals; [`ServiceStatus`] minus the static `workers` field.
#[derive(Default)]
struct Counters {
    requests: u64,
    inflight: u64,
    cells: u64,
    journal_hits: u64,
    simulated: u64,
}

struct Shared {
    journal: PathBuf,
    workers: usize,
    shutdown: AtomicBool,
    counters: Mutex<Counters>,
    /// Available worker permits.
    permits: Mutex<usize>,
    permits_cv: Condvar,
    /// Digests of run requests currently executing (single-flight).
    running: Mutex<HashSet<u64>>,
    running_cv: Condvar,
}

/// Run the service until a shutdown request arrives. Binds the socket,
/// accepts connections, and handles each on its own thread; returns
/// after in-flight work drains and the socket file is removed.
///
/// A stale socket file left by a crashed server is replaced; a socket
/// with a *live* listener is refused with [`ErrorKind::Usage`].
pub fn serve(options: &ServeOptions) -> Result<(), HelixError> {
    if options.socket.exists() {
        if UnixStream::connect(&options.socket).is_ok() {
            return Err(HelixError::usage(format!(
                "socket '{}' already has a listening server",
                options.socket.display()
            )));
        }
        std::fs::remove_file(&options.socket).map_err(|e| {
            HelixError::io(format!(
                "cannot replace stale socket '{}': {e}",
                options.socket.display()
            ))
        })?;
    }
    let listener = UnixListener::bind(&options.socket).map_err(|e| {
        HelixError::io(format!(
            "cannot bind socket '{}': {e}",
            options.socket.display()
        ))
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| HelixError::io(format!("cannot configure socket: {e}")))?;
    // Fail fast if the journal directory is unusable.
    Journal::open(&options.journal)?;
    let shared = Shared {
        journal: options.journal.clone(),
        workers: options.workers.max(1),
        shutdown: AtomicBool::new(false),
        counters: Mutex::new(Counters::default()),
        permits: Mutex::new(options.workers.max(1)),
        permits_cv: Condvar::new(),
        running: Mutex::new(HashSet::new()),
        running_cv: Condvar::new(),
    };
    eprintln!(
        "helix serve: listening on '{}' ({} workers, journal '{}')",
        options.socket.display(),
        shared.workers,
        options.journal.display()
    );
    let shared = &shared;
    std::thread::scope(|scope| {
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    scope.spawn(move || handle_connection(stream, shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    eprintln!("helix serve: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
        // Scope exit joins connection threads: in-flight work drains.
    });
    let _ = std::fs::remove_file(&options.socket);
    eprintln!("helix serve: shut down");
    Ok(())
}

/// One connection: read request lines, answer each with one response
/// line. Decode failures produce a typed error response and the loop
/// continues — a bad client never takes the server down.
fn handle_connection(stream: UnixStream, shared: &Shared) {
    // A finite read timeout lets an idle connection notice shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        // Read one line; timeouts mid-line keep the partial bytes in
        // `buf` (read_until appends) and retry until shutdown.
        let complete_line = loop {
            match reader.read_until(b'\n', &mut buf) {
                Ok(_) if buf.last() == Some(&b'\n') => break true,
                Ok(0) => break false, // EOF (possibly with a final unterminated line)
                Ok(_) => break false, // EOF mid-line
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            if complete_line {
                continue;
            }
            return;
        }
        let response = respond(line, shared);
        let wire = api::encode_response(&response);
        let sent = writer
            .write_all(wire.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if sent.is_err() {
            return;
        }
        if matches!(response, Response::ShuttingDown) {
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
        if !complete_line {
            return;
        }
    }
}

/// Decode and dispatch one request line, maintaining the counters.
fn respond(line: &str, shared: &Shared) -> Response {
    let request = match api::decode_request(line) {
        Ok(request) => request,
        Err(e) => {
            // Undecodable lines still count as requests: the status
            // counters should reflect misbehaving clients.
            shared.counters.lock().unwrap().requests += 1;
            return Response::Error(e);
        }
    };
    {
        let mut c = shared.counters.lock().unwrap();
        c.requests += 1;
        c.inflight += 1;
    }
    let response = dispatch(request, shared);
    {
        let mut c = shared.counters.lock().unwrap();
        c.inflight -= 1;
        match &response {
            Response::Scenario { cached, .. } => {
                c.cells += 1;
                if *cached {
                    c.journal_hits += 1;
                } else {
                    c.simulated += 1;
                }
            }
            Response::Campaign { stats, .. } => {
                c.cells += stats.cells as u64;
                c.journal_hits += stats.journal_hits as u64;
                c.simulated += stats.simulated as u64;
            }
            _ => {}
        }
    }
    response
}

fn dispatch(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Status => {
            let c = shared.counters.lock().unwrap();
            Response::Status(ServiceStatus {
                workers: shared.workers,
                requests: c.requests,
                inflight: c.inflight,
                cells: c.cells,
                journal_hits: c.journal_hits,
                simulated: c.simulated,
            })
        }
        Request::Shutdown => Response::ShuttingDown,
        Request::Diff { .. } => api::execute(request),
        // Explore is deterministic but simulation-heavy: gate it on a
        // worker permit like Check (no journal — the report embeds its
        // own reproduction TOMLs, and reruns are cheap relative to the
        // bookkeeping of caching them).
        Request::Explore { .. } => run_gated(request, shared),
        Request::Check { .. } => run_gated(request, shared),
        Request::RunScenario {
            source,
            mut options,
        } => {
            let digest = singleflight_digest(&Request::RunScenario {
                source: source.clone(),
                options: options.clone(),
            });
            options.journal = Some(shared.journal.clone());
            options.resume = true;
            run_singleflight(Request::RunScenario { source, options }, digest, shared)
        }
        Request::RunCampaign {
            source,
            mut options,
        } => {
            let digest = singleflight_digest(&Request::RunCampaign {
                source: source.clone(),
                options: options.clone(),
            });
            options.journal = Some(shared.journal.clone());
            options.resume = true;
            run_singleflight(Request::RunCampaign { source, options }, digest, shared)
        }
    }
}

/// Canonical digest of a run request, computed from its wire form
/// *before* the server forces journal/resume (those are not encodable).
/// Decoded requests always re-encode; a failure falls back to a digest
/// of the debug form.
fn singleflight_digest(request: &Request) -> u64 {
    let canonical = api::encode_request(request).unwrap_or_else(|_| format!("{request:?}"));
    fnv1a(FNV_OFFSET, canonical.as_bytes())
}

/// Hold identical in-flight submissions until the first finishes, then
/// let them re-execute against the freshly journaled cells.
fn run_singleflight(request: Request, digest: u64, shared: &Shared) -> Response {
    {
        let mut running = shared.running.lock().unwrap();
        while running.contains(&digest) {
            running = shared.running_cv.wait(running).unwrap();
        }
        running.insert(digest);
    }
    let response = run_gated(request, shared);
    {
        shared.running.lock().unwrap().remove(&digest);
        shared.running_cv.notify_all();
    }
    response
}

/// Execute under a worker permit, converting a panic into a typed
/// internal error so one bad request cannot take the service down.
fn run_gated(request: Request, shared: &Shared) -> Response {
    {
        let mut permits = shared.permits.lock().unwrap();
        while *permits == 0 {
            permits = shared.permits_cv.wait(permits).unwrap();
        }
        *permits -= 1;
    }
    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| api::execute(request)))
        .unwrap_or_else(|payload| {
            Response::Error(HelixError::new(
                ErrorKind::Internal,
                format!("request panicked: {}", panic_message(payload.as_ref())),
            ))
        });
    {
        let mut permits = shared.permits.lock().unwrap();
        *permits += 1;
    }
    shared.permits_cv.notify_one();
    response
}

/// Submit one request to a running service and wait for its response —
/// the client half of the protocol (`helix submit`). Local-only request
/// options (journal/resume/chaos) and path sources are rejected before
/// connecting; resolve campaigns with
/// [`api::inline_campaign_source`] first.
pub fn submit(socket: &Path, request: &Request) -> Result<Response, HelixError> {
    let line = api::encode_request(request)?;
    let mut stream = UnixStream::connect(socket).map_err(|e| {
        HelixError::io(format!(
            "cannot connect to '{}': {e} (is `helix serve` running?)",
            socket.display()
        ))
    })?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| HelixError::io(format!("cannot send request: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut response_line = String::new();
    reader
        .read_line(&mut response_line)
        .map_err(|e| HelixError::io(format!("cannot read response: {e}")))?;
    if response_line.is_empty() {
        return Err(HelixError::protocol(
            "server closed the connection without answering",
        ));
    }
    api::decode_response(response_line.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_socket(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("helix.sock")
    }

    fn start(options: &ServeOptions) -> std::thread::JoinHandle<()> {
        let options = options.clone();
        let server_options = options.clone();
        let handle = std::thread::spawn(move || serve(&server_options).unwrap());
        let mut ready = false;
        for _ in 0..200 {
            if UnixStream::connect(&options.socket).is_ok() {
                ready = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(ready, "server never bound its socket");
        handle
    }

    #[test]
    fn status_shutdown_and_stale_socket_handling() {
        let socket = scratch_socket("status");
        let options = ServeOptions {
            workers: 2,
            ..ServeOptions::new(&socket)
        };
        assert_eq!(
            options.journal,
            PathBuf::from(format!("{}.journal", socket.display()))
        );
        let handle = start(&options);

        match submit(&socket, &Request::Status).unwrap() {
            Response::Status(status) => {
                assert_eq!(status.workers, 2);
                assert_eq!(status.requests, 1);
                assert_eq!(status.cells, 0);
            }
            other => panic!("expected Status, got {other:?}"),
        }
        assert!(matches!(
            submit(&socket, &Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        handle.join().unwrap();
        assert!(!socket.exists(), "socket removed on shutdown");

        // A stale socket file (crashed server) is replaced on restart.
        std::fs::write(&socket, b"").unwrap();
        let handle = start(&options);
        assert!(matches!(
            submit(&socket, &Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        handle.join().unwrap();
    }

    #[test]
    fn malformed_lines_get_typed_errors_and_server_survives() {
        let socket = scratch_socket("malformed");
        let options = ServeOptions::new(&socket);
        let handle = start(&options);

        let mut stream = UnixStream::connect(&socket).unwrap();
        stream
            .write_all(b"this is not json\n{\"v\": 1, \"type\": \"frobnicate\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match api::decode_response(line.trim_end()).unwrap() {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::Protocol),
            other => panic!("expected Error, got {other:?}"),
        }
        line.clear();
        reader.read_line(&mut line).unwrap();
        match api::decode_response(line.trim_end()).unwrap() {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Protocol);
                assert!(e.message.contains("frobnicate"), "{}", e.message);
            }
            other => panic!("expected Error, got {other:?}"),
        }
        drop(reader);
        drop(stream);

        // The server is still answering after two bad requests, and the
        // bad requests are visible in the counters.
        match submit(&socket, &Request::Status).unwrap() {
            Response::Status(status) => assert_eq!(status.requests, 3),
            other => panic!("expected Status, got {other:?}"),
        }
        assert!(matches!(
            submit(&socket, &Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        handle.join().unwrap();
    }
}
