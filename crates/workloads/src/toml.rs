//! Minimal TOML reader/writer for scenario specs.
//!
//! The vendored `serde` is an inert marker (this build is
//! network-isolated), so scenario files are handled by this small,
//! dependency-free TOML subset instead: key/value pairs, `[tables]`,
//! `[[arrays of tables]]` (with dotted paths), basic strings, integers,
//! floats, booleans, arrays, and inline tables — everything the spec
//! format uses, and nothing more. Parse errors carry line numbers so a
//! broken scenario file fails CI with a pointable message.

use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Basic string.
    Str(String),
    /// 64-bit integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Array of values.
    Array(Vec<Value>),
    /// Table (standard, dotted, or inline).
    Table(Table),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// An insertion-ordered table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// Empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Set `key` (replacing an existing entry of the same name).
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a TOML document into its root table.
pub fn parse(input: &str) -> Result<Table, ParseError> {
    Parser {
        chars: input.chars().collect(),
        pos: 0,
        line: 1,
    }
    .document()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c == Some('\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Skip spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// Skip whitespace, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ') | Some('\t') | Some('\n') | Some('\r') => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    /// Require end-of-line (possibly preceded by a comment).
    fn expect_eol(&mut self) -> Result<(), ParseError> {
        self.skip_inline_ws();
        if self.peek() == Some('#') {
            while !matches!(self.peek(), None | Some('\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some('\r') => {
                self.bump();
                if self.peek() == Some('\n') {
                    self.bump();
                }
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected end of line, found '{c}'"))),
        }
    }

    fn bare_key(&mut self) -> Result<String, ParseError> {
        let mut key = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                // Dots are handled by the caller (header paths); keys in
                // key/value position must not contain them.
                if c == '.' {
                    break;
                }
                key.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if key.is_empty() {
            Err(self.err("expected a key"))
        } else {
            Ok(key)
        }
    }

    /// Dotted path of bare keys, e.g. `phase.op`.
    fn key_path(&mut self) -> Result<Vec<String>, ParseError> {
        let mut path = vec![self.bare_key()?];
        while self.peek() == Some('.') {
            self.bump();
            path.push(self.bare_key()?);
        }
        Ok(path)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        assert_eq!(self.bump(), Some('"'));
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return Err(self.err("unterminated string")),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    other => return Err(self.err(format!("bad escape: {other:?}"))),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || "+-._eE".contains(c) {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad float '{text}': {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.err(format!("bad integer '{text}': {e}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.inline_table(),
            Some('t') | Some('f') => {
                let word: String = self
                    .chars
                    .iter()
                    .skip(self.pos)
                    .take_while(|c| c.is_ascii_alphabetic())
                    .collect();
                match word.as_str() {
                    "true" => {
                        self.pos += 4;
                        Ok(Value::Bool(true))
                    }
                    "false" => {
                        self.pos += 5;
                        Ok(Value::Bool(false))
                    }
                    other => Err(self.err(format!("unexpected word '{other}'"))),
                }
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.number(),
            other => Err(self.err(format!("expected a value, found {other:?}"))),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        assert_eq!(self.bump(), Some('['));
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(']') {
                self.bump();
                return Ok(Value::Array(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                other => return Err(self.err(format!("expected ',' or ']', found {other:?}"))),
            }
        }
    }

    // More lenient than standard TOML: newlines and comments are
    // allowed inside inline tables, so hand-written specs can wrap long
    // op lists.
    fn inline_table(&mut self) -> Result<Value, ParseError> {
        assert_eq!(self.bump(), Some('{'));
        let mut table = Table::new();
        self.skip_trivia();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Table(table));
        }
        loop {
            self.skip_trivia();
            let key = self.bare_key()?;
            self.skip_trivia();
            if self.bump() != Some('=') {
                return Err(self.err("expected '=' in inline table"));
            }
            self.skip_trivia();
            let value = self.value()?;
            if table.get(&key).is_some() {
                return Err(self.err(format!("duplicate key '{key}'")));
            }
            table.set(key, value);
            self.skip_trivia();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Value::Table(table)),
                other => return Err(self.err(format!("expected ',' or '}}', found {other:?}"))),
            }
        }
    }

    fn document(mut self) -> Result<Table, ParseError> {
        let mut root = Table::new();
        // Path of the table currently receiving key/value pairs; empty
        // means the root table.
        let mut current: Vec<(String, bool)> = Vec::new(); // (key, is_array_elem)
        loop {
            self.skip_trivia();
            let Some(c) = self.peek() else {
                return Ok(root);
            };
            if c == '[' {
                self.bump();
                let is_array = self.peek() == Some('[');
                if is_array {
                    self.bump();
                }
                self.skip_inline_ws();
                let path = self.key_path()?;
                self.skip_inline_ws();
                if self.bump() != Some(']') {
                    return Err(self.err("expected ']' closing table header"));
                }
                if is_array && self.bump() != Some(']') {
                    return Err(self.err("expected ']]' closing array-of-tables header"));
                }
                self.expect_eol()?;
                if is_array {
                    Self::push_array_elem(&mut root, &path).map_err(|m| self.err(m))?;
                } else {
                    Self::ensure_table(&mut root, &path).map_err(|m| self.err(m))?;
                }
                current = path.iter().map(|k| (k.clone(), false)).collect();
                if let Some(last) = current.last_mut() {
                    last.1 = is_array;
                }
            } else {
                let key = self.bare_key()?;
                self.skip_inline_ws();
                if self.bump() != Some('=') {
                    return Err(self.err(format!("expected '=' after key '{key}'")));
                }
                self.skip_inline_ws();
                let value = self.value()?;
                self.expect_eol()?;
                let path: Vec<String> = current.iter().map(|(k, _)| k.clone()).collect();
                let tail_is_array = current.last().map(|(_, a)| *a).unwrap_or(false);
                let target = Self::navigate(&mut root, &path, tail_is_array)
                    .ok_or_else(|| self.err("internal: lost current table"))?;
                if target.get(&key).is_some() {
                    return Err(self.err(format!("duplicate key '{key}'")));
                }
                target.set(key, value);
            }
        }
    }

    /// Walk `path` from the root, descending into the last element of
    /// any array-of-tables along the way.
    fn navigate<'t>(
        root: &'t mut Table,
        path: &[String],
        tail_is_array: bool,
    ) -> Option<&'t mut Table> {
        let mut cur = root;
        for (i, key) in path.iter().enumerate() {
            let is_last = i + 1 == path.len();
            let v = cur.get_mut(key)?;
            cur = match v {
                Value::Table(t) => t,
                Value::Array(items) if !is_last || tail_is_array => match items.last_mut() {
                    Some(Value::Table(t)) => t,
                    _ => return None,
                },
                _ => return None,
            };
        }
        Some(cur)
    }

    fn ensure_table(root: &mut Table, path: &[String]) -> Result<(), String> {
        let mut cur = root;
        for key in path {
            if cur.get(key).is_none() {
                cur.set(key.clone(), Value::Table(Table::new()));
            }
            cur = match cur.get_mut(key).unwrap() {
                Value::Table(t) => t,
                Value::Array(items) => match items.last_mut() {
                    Some(Value::Table(t)) => t,
                    _ => return Err(format!("'{key}' is not a table")),
                },
                _ => return Err(format!("'{key}' already holds a non-table value")),
            };
        }
        Ok(())
    }

    fn push_array_elem(root: &mut Table, path: &[String]) -> Result<(), String> {
        let (last, prefix) = path.split_last().expect("non-empty header path");
        let mut cur = root;
        for key in prefix {
            if cur.get(key).is_none() {
                cur.set(key.clone(), Value::Table(Table::new()));
            }
            cur = match cur.get_mut(key).unwrap() {
                Value::Table(t) => t,
                Value::Array(items) => match items.last_mut() {
                    Some(Value::Table(t)) => t,
                    _ => return Err(format!("'{key}' is not a table")),
                },
                _ => return Err(format!("'{key}' already holds a non-table value")),
            };
        }
        match cur.get_mut(last) {
            None => {
                cur.set(last.clone(), Value::Array(vec![Value::Table(Table::new())]));
            }
            Some(Value::Array(items)) => items.push(Value::Table(Table::new())),
            Some(_) => return Err(format!("'{last}' already holds a non-array value")),
        }
        Ok(())
    }
}

/// Serialize a root table as a TOML document.
///
/// Scalars and arrays of scalars/inline-tables are written as key/value
/// pairs; table values become `[sections]` and arrays of tables become
/// `[[sections]]` — mirroring the subset [`parse`] accepts, so
/// `parse(write(t)) == t` for any table this module produces.
pub fn write(root: &Table) -> String {
    let mut out = String::new();
    write_table(&mut out, root, &[]);
    out
}

fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Array(items)
        if !items.is_empty() && items.iter().all(|i| matches!(i, Value::Table(_))))
}

fn write_table(out: &mut String, table: &Table, path: &[&str]) {
    // Scalars first, then subtables/arrays-of-tables, to keep every
    // key/value pair inside the section it belongs to.
    for (k, v) in table.iter() {
        if matches!(v, Value::Table(_)) || is_table_array(v) {
            continue;
        }
        out.push_str(&format!("{k} = {}\n", render_value(v)));
    }
    for (k, v) in table.iter() {
        match v {
            Value::Table(t) => {
                let mut sub: Vec<&str> = path.to_vec();
                sub.push(k);
                out.push_str(&format!("\n[{}]\n", sub.join(".")));
                write_table(out, t, &sub);
            }
            Value::Array(items) if is_table_array(v) => {
                let mut sub: Vec<&str> = path.to_vec();
                sub.push(k);
                for item in items {
                    let Value::Table(t) = item else {
                        unreachable!()
                    };
                    out.push_str(&format!("\n[[{}]]\n", sub.join(".")));
                    write_table(out, t, &sub);
                }
            }
            _ => {}
        }
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
                .replace('\r', "\\r")
        ),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Keep floats round-trippable and visibly floats.
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(t) => {
            let inner: Vec<String> = t
                .iter()
                .map(|(k, v)| format!("{k} = {}", render_value(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_comments() {
        let t = parse(
            "# scenario\nname = \"175.vpr\" # trailing\nseed = 13\nratio = 0.5\nfull = true\n",
        )
        .unwrap();
        assert_eq!(t.get("name").unwrap().as_str(), Some("175.vpr"));
        assert_eq!(t.get("seed").unwrap().as_int(), Some(13));
        assert_eq!(t.get("ratio").unwrap().as_float(), Some(0.5));
        assert_eq!(t.get("full").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn sections_and_arrays_of_tables() {
        let doc = "\
cores = 16

[run]
fuel = 42

[[phase]]
kind = \"fill\"

[[phase]]
kind = \"doall\"
work = 14

[[phase.op]]
kind = \"stream\"
";
        let t = parse(doc).unwrap();
        assert_eq!(
            t.get("run")
                .unwrap()
                .as_table()
                .unwrap()
                .get("fuel")
                .unwrap()
                .as_int(),
            Some(42)
        );
        let phases = t.get("phase").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        let second = phases[1].as_table().unwrap();
        assert_eq!(second.get("work").unwrap().as_int(), Some(14));
        let ops = second.get("op").unwrap().as_array().unwrap();
        assert_eq!(
            ops[0].as_table().unwrap().get("kind").unwrap().as_str(),
            Some("stream")
        );
    }

    #[test]
    fn inline_tables_and_nested_arrays() {
        let t = parse(
            "ops = [{kind = \"work\", insts = 46}, {kind = \"guard\", then = [{kind = \"bump\"}], else = []}]\n",
        )
        .unwrap();
        let ops = t.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), 2);
        let guard = ops[1].as_table().unwrap();
        assert_eq!(guard.get("then").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(guard.get("else").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn multiline_inline_tables_with_comments() {
        let doc = "ops = [\n  {kind = \"var_work\", # which op\n   dist = {kind = \"geometric\",\n     mean = 6, cap = 60}}, # tail\n]\n";
        let t = parse(doc).unwrap();
        let op = t.get("ops").unwrap().as_array().unwrap()[0]
            .as_table()
            .unwrap();
        let dist = op.get("dist").unwrap().as_table().unwrap();
        assert_eq!(dist.get("mean").unwrap().as_int(), Some(6));
    }

    #[test]
    fn multiline_arrays() {
        let t = parse("xs = [\n  1,\n  2, # two\n  3,\n]\n").unwrap();
        let xs: Vec<i64> = t
            .get("xs")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(xs, vec![1, 2, 3]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut t = Table::new();
        t.set("s", Value::Str("a\"b\\c\nd".into()));
        let text = write(&t);
        assert_eq!(parse(&text).unwrap(), t);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = 1\nbroken =\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("dup = 1\ndup = 2\n").is_err());
        assert!(parse("x = [1, ").is_err());
    }

    #[test]
    fn write_then_parse_is_identity() {
        let mut run = Table::new();
        run.set("cores", Value::Int(16));
        run.set(
            "machines",
            Value::Array(vec![
                Value::Str("sequential".into()),
                Value::Str("helix-rc".into()),
            ]),
        );
        let mut p1 = Table::new();
        p1.set("kind", Value::Str("fill".into()));
        let mut op = Table::new();
        op.set("kind", Value::Str("work".into()));
        op.set("insts", Value::Int(46));
        let mut p2 = Table::new();
        p2.set("kind", Value::Str("hot_loop".into()));
        p2.set("ops", Value::Array(vec![Value::Table(op)]));
        let mut root = Table::new();
        root.set("name", Value::Str("256.bzip2".into()));
        root.set("seed", Value::Int(53));
        root.set("run", Value::Table(run));
        root.set(
            "phase",
            Value::Array(vec![Value::Table(p1), Value::Table(p2)]),
        );
        let text = write(&root);
        assert_eq!(parse(&text).unwrap(), root, "document:\n{text}");
    }

    #[test]
    fn negative_and_large_integers() {
        let t = parse("a = -1\nb = 9223372036854775807\n").unwrap();
        assert_eq!(t.get("a").unwrap().as_int(), Some(-1));
        assert_eq!(t.get("b").unwrap().as_int(), Some(i64::MAX));
    }
}
