//! Executing interpreter.
//!
//! The interpreter is *resumable*: a [`Thread`] holds a program counter
//! and register file and advances one instruction per [`Thread::step`].
//! The cycle-level simulator drives threads instruction by instruction so
//! functional execution and timing stay in lockstep; standalone runs use
//! [`run_to_completion`].

use crate::inst::{AddrBase, AddrExpr, Inst, Intrinsic, Operand, Terminator};
use crate::memory::{MemError, Memory};
use crate::program::Program;
use crate::rng::SplitMix64;
use crate::trace::{InstSite, MemAccess, TraceSink};
use crate::types::{BlockId, Reg, Value};
use std::fmt;

/// Execution environment shared by all threads of a run: memory plus the
/// hidden state of stateful intrinsics.
#[derive(Debug, Clone)]
pub struct Env {
    /// The machine memory.
    pub mem: Memory,
    /// Hidden state of the `Rand` intrinsic.
    pub rng: SplitMix64,
}

impl Env {
    /// Environment with the program's static regions mapped.
    pub fn for_program(program: &Program) -> Env {
        Env {
            mem: Memory::for_program(program),
            rng: SplitMix64::default(),
        }
    }
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A memory access failed.
    Mem(MemError),
    /// The step budget was exhausted (probable infinite loop).
    FuelExhausted,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Mem(e) => write!(f, "memory fault: {e}"),
            InterpError::FuelExhausted => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> Self {
        InterpError::Mem(e)
    }
}

/// Result of a single interpreter step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction executed at the given site.
    Inst(InstSite),
    /// A terminator executed, transferring control to `to`.
    Flow {
        /// Block whose terminator ran.
        from: BlockId,
        /// Destination block.
        to: BlockId,
    },
    /// The thread executed `Return` and is now finished.
    Done,
}

/// A resumable thread of IR execution: register file + program counter.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Register file (one slot per program register).
    pub regs: Vec<Value>,
    /// Current block.
    pub block: BlockId,
    /// Instruction index within the block (== `insts.len()` means the
    /// terminator is next).
    pub ip: usize,
    /// Set once `Return` executes.
    pub finished: bool,
    /// Dynamic instruction count executed by this thread (terminators
    /// included).
    pub dyn_insts: u64,
}

impl Thread {
    /// A thread positioned at the program entry with a zeroed register
    /// file.
    pub fn at_entry(program: &Program) -> Thread {
        Thread::at_block(program, program.graph.entry)
    }

    /// A thread positioned at `block` with a zeroed register file.
    pub fn at_block(program: &Program, block: BlockId) -> Thread {
        Thread {
            regs: vec![Value::default(); program.n_regs as usize],
            block,
            ip: 0,
            finished: false,
            dyn_insts: 0,
        }
    }

    /// The instruction about to execute, or `None` if the terminator (or
    /// nothing) is next.
    pub fn peek<'p>(&self, program: &'p Program) -> Option<&'p Inst> {
        if self.finished {
            return None;
        }
        program.graph.block(self.block).insts.get(self.ip)
    }

    /// The terminator about to execute, if the thread has reached the end
    /// of its block.
    pub fn peek_terminator<'p>(&self, program: &'p Program) -> Option<&'p Terminator> {
        if self.finished {
            return None;
        }
        let b = program.graph.block(self.block);
        if self.ip >= b.insts.len() {
            Some(&b.term)
        } else {
            None
        }
    }

    /// Evaluate an operand against this thread's registers.
    pub fn eval(&self, op: Operand) -> Value {
        match op {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    /// Evaluate an address expression.
    pub fn eval_addr(&self, addr: &AddrExpr, mem: &Memory) -> u64 {
        let base = match addr.base {
            AddrBase::Region(r) => mem.base_of(r),
            AddrBase::Reg(r) => self.regs[r.index()].as_addr(),
        };
        let idx = addr
            .index
            .map(|(r, scale)| self.regs[r.index()].as_int().wrapping_mul(scale))
            .unwrap_or(0);
        base.wrapping_add(idx as u64)
            .wrapping_add(addr.offset as u64)
    }

    fn set(&mut self, dst: Reg, v: Value) {
        self.regs[dst.index()] = v;
    }

    /// Execute one instruction or terminator.
    ///
    /// # Errors
    ///
    /// Propagates memory faults from loads, stores, and memory intrinsics.
    pub fn step<S: TraceSink>(
        &mut self,
        program: &Program,
        env: &mut Env,
        sink: &mut S,
    ) -> Result<StepEvent, InterpError> {
        if self.finished {
            return Ok(StepEvent::Done);
        }
        let block = program.graph.block(self.block);
        if self.ip >= block.insts.len() {
            // Execute terminator.
            self.dyn_insts += 1;
            let from = self.block;
            match &block.term {
                Terminator::Jump(t) => {
                    self.block = *t;
                    self.ip = 0;
                    sink.on_flow(from, *t);
                    return Ok(StepEvent::Flow { from, to: *t });
                }
                Terminator::Branch { cond, then_, else_ } => {
                    let to = if self.eval(*cond).as_bool() {
                        *then_
                    } else {
                        *else_
                    };
                    self.block = to;
                    self.ip = 0;
                    sink.on_flow(from, to);
                    return Ok(StepEvent::Flow { from, to });
                }
                Terminator::Return => {
                    self.finished = true;
                    return Ok(StepEvent::Done);
                }
            }
        }

        let site = InstSite {
            block: self.block,
            index: self.ip,
        };
        let inst = &block.insts[self.ip];
        self.ip += 1;
        self.dyn_insts += 1;
        sink.on_exec(site, inst);

        match inst {
            Inst::Const { dst, value } => self.set(*dst, *value),
            Inst::Un { dst, op, src } => {
                let v = op.eval(self.eval(*src));
                self.set(*dst, v);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let v = op.eval(self.eval(*lhs), self.eval(*rhs));
                self.set(*dst, v);
            }
            Inst::Load {
                dst,
                addr,
                ty,
                shared,
                ..
            } => {
                let a = self.eval_addr(addr, &env.mem);
                let v = env.mem.load(a, *ty)?;
                sink.on_mem(
                    site,
                    MemAccess {
                        addr: a,
                        len: ty.size() as u32,
                        is_store: false,
                        shared: *shared,
                    },
                );
                self.set(*dst, v);
            }
            Inst::Store {
                src,
                addr,
                ty,
                shared,
                ..
            } => {
                let a = self.eval_addr(addr, &env.mem);
                let v = self.eval(*src);
                env.mem.store(a, *ty, v)?;
                sink.on_mem(
                    site,
                    MemAccess {
                        addr: a,
                        len: ty.size() as u32,
                        is_store: true,
                        shared: *shared,
                    },
                );
            }
            Inst::Call {
                dst,
                intrinsic,
                args,
            } => {
                let result = self.exec_intrinsic(site, *intrinsic, args, env, sink)?;
                if let (Some(d), Some(v)) = (dst, result) {
                    self.set(*d, v);
                }
            }
            // Functionally inert: synchronization semantics live in the
            // simulator. Sequential interpretation preserves program
            // order, which trivially satisfies them.
            Inst::Wait { .. } | Inst::Signal { .. } | Inst::Nop { .. } => {}
        }
        Ok(StepEvent::Inst(site))
    }

    fn exec_intrinsic<S: TraceSink>(
        &mut self,
        site: InstSite,
        intrinsic: Intrinsic,
        args: &[Operand],
        env: &mut Env,
        sink: &mut S,
    ) -> Result<Option<Value>, InterpError> {
        let arg = |i: usize| -> Value { self.eval(args[i]) };
        match intrinsic {
            Intrinsic::Alloc => {
                let size = arg(0).as_int().max(0) as u64;
                let base = env.mem.alloc(size)?;
                Ok(Some(Value::Int(base as i64)))
            }
            Intrinsic::Rand => Ok(Some(Value::Int(env.rng.next_u64() as i64))),
            Intrinsic::Memcpy => {
                let (dst, src, len) = (arg(0).as_addr(), arg(1).as_addr(), arg(2).as_int() as u64);
                env.mem.copy(dst, src, len)?;
                sink.on_mem(
                    site,
                    MemAccess {
                        addr: src,
                        len: len as u32,
                        is_store: false,
                        shared: None,
                    },
                );
                sink.on_mem(
                    site,
                    MemAccess {
                        addr: dst,
                        len: len as u32,
                        is_store: true,
                        shared: None,
                    },
                );
                Ok(None)
            }
            Intrinsic::Memset => {
                let (dst, byte, len) = (arg(0).as_addr(), arg(1).as_int() as u8, arg(2).as_int());
                env.mem.fill(dst, byte, len as u64)?;
                sink.on_mem(
                    site,
                    MemAccess {
                        addr: dst,
                        len: len as u32,
                        is_store: true,
                        shared: None,
                    },
                );
                Ok(None)
            }
            Intrinsic::PureHash => {
                let x = arg(0).as_int() as u64;
                // Deterministic avalanche mix (xorshift-multiply).
                let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 27;
                Ok(Some(Value::Int(z as i64)))
            }
            Intrinsic::SinApprox => {
                let x = arg(0).as_float();
                Ok(Some(Value::Float(x.sin())))
            }
            Intrinsic::Free => Ok(None),
        }
    }
}

/// Run a fresh thread from the entry block to completion.
///
/// # Errors
///
/// Propagates interpreter faults; fails with
/// [`InterpError::FuelExhausted`] after `10^9` steps.
pub fn run_to_completion(program: &Program, env: &mut Env) -> Result<Thread, InterpError> {
    run_with_sink(program, env, &mut crate::trace::NullSink)
}

/// Run a fresh thread to completion with a trace sink attached.
///
/// # Errors
///
/// Propagates interpreter faults; fails with
/// [`InterpError::FuelExhausted`] after `10^9` steps.
pub fn run_with_sink<S: TraceSink>(
    program: &Program,
    env: &mut Env,
    sink: &mut S,
) -> Result<Thread, InterpError> {
    let mut thread = Thread::at_entry(program);
    let mut fuel: u64 = 1_000_000_000;
    while !thread.finished {
        if fuel == 0 {
            return Err(InterpError::FuelExhausted);
        }
        fuel -= 1;
        thread.step(program, env, sink)?;
    }
    Ok(thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::BinOp;
    use crate::types::Ty;

    #[test]
    fn step_events_sequence() {
        let mut b = ProgramBuilder::new("ev");
        let r = b.reg();
        b.const_i(r, 1);
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let mut t = Thread::at_entry(&p);
        let mut sink = crate::trace::NullSink;
        assert!(matches!(
            t.step(&p, &mut env, &mut sink).unwrap(),
            StepEvent::Inst(_)
        ));
        assert!(matches!(
            t.step(&p, &mut env, &mut sink).unwrap(),
            StepEvent::Done
        ));
        assert!(t.finished);
        // Stepping a finished thread stays Done.
        assert!(matches!(
            t.step(&p, &mut env, &mut sink).unwrap(),
            StepEvent::Done
        ));
    }

    #[test]
    fn peek_matches_step() {
        let mut b = ProgramBuilder::new("peek");
        let r = b.reg();
        b.const_i(r, 7);
        b.bin(r, BinOp::Add, r, 1i64);
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let mut t = Thread::at_entry(&p);
        assert!(matches!(t.peek(&p), Some(Inst::Const { .. })));
        assert!(t.peek_terminator(&p).is_none());
        t.step(&p, &mut env, &mut crate::trace::NullSink).unwrap();
        assert!(matches!(t.peek(&p), Some(Inst::Bin { .. })));
        t.step(&p, &mut env, &mut crate::trace::NullSink).unwrap();
        assert!(t.peek(&p).is_none());
        assert!(matches!(t.peek_terminator(&p), Some(Terminator::Return)));
    }

    #[test]
    fn alloc_and_pointer_chase() {
        // node { next: i64, value: i64 }; build 3-node list, then walk it.
        let mut b = ProgramBuilder::new("list");
        let [head, cur, tmp, sum, i] = b.regs();
        b.const_i(head, 0);
        // Build list of 3 nodes, prepending.
        b.counted_loop(0, 3, 1, |b, idx| {
            b.call(Some(tmp), Intrinsic::Alloc, vec![Operand::imm(16)]);
            b.store(head, AddrExpr::ptr(tmp, 0), Ty::I64);
            b.store(idx, AddrExpr::ptr(tmp, 8), Ty::I64);
            b.copy(head, tmp);
        });
        // Walk: sum values.
        b.const_i(sum, 0);
        b.copy(cur, head);
        b.const_i(i, 0);
        b.while_loop(
            |b| {
                let c = b.reg();
                b.bin(c, BinOp::CmpNe, cur, 0i64);
                Operand::Reg(c)
            },
            |b| {
                let v = b.reg();
                b.load(v, AddrExpr::ptr(cur, 8), Ty::I64);
                b.bin(sum, BinOp::Add, sum, v);
                b.load(cur, AddrExpr::ptr(cur, 0), Ty::I64);
            },
        );
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(t.regs[sum.index()].as_int(), 1 + 2);
        assert_eq!(env.mem.region_count(), 3); // 3 heap nodes, 0 static
    }

    #[test]
    fn rand_is_deterministic_across_runs() {
        let mut b = ProgramBuilder::new("rand");
        let r = b.reg();
        b.call(Some(r), Intrinsic::Rand, vec![]);
        let p = b.finish();
        let mut e1 = Env::for_program(&p);
        let mut e2 = Env::for_program(&p);
        let t1 = run_to_completion(&p, &mut e1).unwrap();
        let t2 = run_to_completion(&p, &mut e2).unwrap();
        assert_eq!(t1.regs[r.index()], t2.regs[r.index()]);
    }

    #[test]
    fn pure_hash_is_value_deterministic() {
        let mut b = ProgramBuilder::new("hash");
        let [a, c] = b.regs();
        b.call(Some(a), Intrinsic::PureHash, vec![Operand::imm(5)]);
        b.call(Some(c), Intrinsic::PureHash, vec![Operand::imm(5)]);
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(t.regs[a.index()], t.regs[c.index()]);
    }

    #[test]
    fn memcpy_intrinsic() {
        let mut b = ProgramBuilder::new("cpy");
        let r = b.region("buf", 128, Ty::I64);
        let [src, dst, out] = b.regs();
        b.const_i(out, 0);
        let v = b.reg();
        b.const_i(v, 0xABCD);
        b.store(v, AddrExpr::region(r, 0), Ty::I64);
        // src/dst pointers via region base arithmetic:
        b.const_i(src, 0);
        b.const_i(dst, 0);
        let p_regbase = b.reg();
        // Compute the base address: load from a pointer we store... easier:
        // memcpy with region-expressed addresses needs reg pointers, so
        // leak the base via AddrExpr evaluation in a load/store pair.
        // Simplest: store base-relative data and use Memcpy with computed
        // pointers from LoadEffectiveAddress-style trick: region base is
        // deterministic (FIRST_BASE), so use the constant.
        b.const_i(p_regbase, crate::memory::FIRST_BASE as i64);
        b.call(
            None,
            Intrinsic::Memcpy,
            vec![
                Operand::Reg(p_regbase), // dst = base... copy onto itself+64
                Operand::Reg(p_regbase),
                Operand::imm(8),
            ],
        );
        b.load(out, AddrExpr::region(r, 0), Ty::I64);
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert_eq!(t.regs[out.index()].as_int(), 0xABCD);
    }

    #[test]
    fn dyn_inst_counting() {
        let mut b = ProgramBuilder::new("count");
        let r = b.reg();
        b.const_i(r, 0);
        b.counted_loop(0, 5, 1, |b, _| {
            b.bin(r, BinOp::Add, r, 1i64);
        });
        let p = b.finish();
        let mut env = Env::for_program(&p);
        let t = run_to_completion(&p, &mut env).unwrap();
        assert!(t.dyn_insts > 20);
        assert_eq!(t.regs[r.index()].as_int(), 5);
    }
}
