//! Machine configuration (paper §6.1).

use helix_ring_cache::RingConfig;
use serde::{Deserialize, Serialize};

/// Core microarchitecture model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreModel {
    /// In-order issue (the validated Atom-like XIOSim model; the paper's
    /// default is 2-wide).
    InOrder {
        /// Issue width.
        width: u32,
    },
    /// Out-of-order issue with a reorder buffer (the Nehalem-like Zesto
    /// model; the paper sweeps 2- and 4-wide).
    OutOfOrder {
        /// Dispatch/retire width.
        width: u32,
        /// Reorder-buffer capacity.
        rob: u32,
    },
}

/// One cache level's geometry and hit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size: u64,
    /// Associativity.
    pub assoc: usize,
    /// Line size in bytes.
    pub line: u64,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

/// Which execution engine drives the cores' functional state and issue
/// loops. All three engines produce bit-identical results (pinned by
/// the decode- and lane-exactness regression tests); they differ only
/// in speed and sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineSel {
    /// The original tree-walking interpreter over the `Inst` enum, kept
    /// as a cross-check and debugging reference.
    Tree,
    /// Pre-decoded micro-op streams (`helix_ir::decode`): the program is
    /// lowered once into flat tables with pre-resolved register slots,
    /// folded immediates, and pre-evaluated address bases, so the
    /// per-instruction hot path is an index-dispatch loop. Cycle-exact
    /// with the tree interpreter; the default.
    Decoded,
    /// The decoded engine driven through a lane-parallel
    /// [`SimSession`](crate::SimSession): many machines share one
    /// `Arc<DecodedProgram>` and step in lockstep. A machine built
    /// directly under this selection behaves exactly like `Decoded`;
    /// the selection exists so callers (experiments, campaigns, the
    /// CLI) can request batched execution uniformly.
    Batched,
}

impl EngineSel {
    /// Whether this engine runs on pre-decoded micro-op tables (and can
    /// therefore share one decode across machines).
    pub fn is_decoded(self) -> bool {
        !matches!(self, EngineSel::Tree)
    }
}

/// Wait-grant policy (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncModel {
    /// A core's `wait` is granted by its immediate predecessor's signal
    /// only — the conventional sequential chain (HCCv1/v2).
    ChainedPredecessor,
    /// A core's `wait` observes all predecessor iterations' signals
    /// directly, so iterations that forgo a segment do not lengthen the
    /// chain (HELIX-RC).
    AllPredecessors,
}

/// Which traffic classes are decoupled through the ring cache (the Fig. 8
/// lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DecoupleConfig {
    /// Register-carried shared scalars ride the ring.
    pub register: bool,
    /// Synchronization signals ride the ring.
    pub synch: bool,
    /// Memory-carried shared data rides the ring.
    pub memory: bool,
}

impl DecoupleConfig {
    /// Everything decoupled (HELIX-RC).
    pub fn all() -> DecoupleConfig {
        DecoupleConfig {
            register: true,
            synch: true,
            memory: true,
        }
    }

    /// Nothing decoupled (conventional hardware).
    pub fn none() -> DecoupleConfig {
        DecoupleConfig::default()
    }

    /// Whether any class needs a ring cache.
    pub fn any(&self) -> bool {
        self.register || self.synch || self.memory
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core count.
    pub cores: usize,
    /// Core model.
    pub core: CoreModel,
    /// Per-core private L1 data cache (paper: 32 KB, 8-way).
    pub l1: CacheConfig,
    /// Shared L2 (paper: 8 MB, 16 banks; size fixed across core counts).
    pub l2: CacheConfig,
    /// L2 bank count.
    pub l2_banks: usize,
    /// DRAM row-hit latency beyond L2 (cycles).
    pub dram_row_hit: u32,
    /// DRAM row-miss latency beyond L2 (cycles).
    pub dram_row_miss: u32,
    /// Cache-to-cache transfer latency of the coherence protocol
    /// (paper: optimistic 10; measured 75/95/110 on real machines).
    pub c2c_latency: u32,
    /// Branch mispredict penalty (cycles).
    pub mispredict_penalty: u32,
    /// Ring cache, when present.
    pub ring: Option<RingConfig>,
    /// Wait-grant policy.
    pub sync: SyncModel,
    /// Traffic-class decoupling.
    pub decouple: DecoupleConfig,
    /// Event-skipping fast-forward: when every core is provably stalled,
    /// jump the global clock to the next wakeup event instead of
    /// simulating the idle cycles one at a time. Cycle-exact — results
    /// are bit-identical to the naive loop (see the cycle-exactness
    /// regression tests) — so it is on by default; disable it to
    /// cross-check or to measure the naive loop.
    pub fast_forward: bool,
    /// Execution engine selection: pre-decoded micro-ops (default), the
    /// tree-walking interpreter, or the batched lane engine. All
    /// produce bit-identical results; they differ only in speed.
    pub engine: EngineSel,
}

impl MachineConfig {
    /// The paper's conventional machine: `cores` 2-way in-order cores,
    /// 32 KB L1s, 8 MB shared L2, optimistic 10-cycle coherence.
    pub fn conventional(cores: usize) -> MachineConfig {
        MachineConfig {
            cores,
            core: CoreModel::InOrder { width: 2 },
            l1: CacheConfig {
                size: 32 * 1024,
                assoc: 8,
                line: 64,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size: 8 * 1024 * 1024,
                assoc: 16,
                line: 64,
                hit_latency: 12,
            },
            l2_banks: 16,
            dram_row_hit: 150,
            dram_row_miss: 250,
            c2c_latency: 10,
            mispredict_penalty: 8,
            ring: None,
            sync: SyncModel::ChainedPredecessor,
            decouple: DecoupleConfig::none(),
            fast_forward: true,
            engine: EngineSel::Decoded,
        }
    }

    /// The same machine with the naive (no event-skipping) cycle loop,
    /// used by benches and cycle-exactness tests.
    pub fn without_fast_forward(mut self) -> MachineConfig {
        self.fast_forward = false;
        self
    }

    /// The same machine driven by the given execution engine; used by
    /// benches, the decode-exactness tests, and batched campaigns.
    pub fn with_engine(mut self, engine: EngineSel) -> MachineConfig {
        self.engine = engine;
        self
    }

    /// The HELIX-RC machine: conventional plus the default ring cache,
    /// all communication decoupled, all-predecessor waits.
    pub fn helix_rc(cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::conventional(cores);
        cfg.ring = Some(RingConfig::paper_default(cores));
        cfg.sync = SyncModel::AllPredecessors;
        cfg.decouple = DecoupleConfig::all();
        cfg
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if decoupling is requested without a ring, or the ring's
    /// node count differs from the core count.
    pub fn assert_valid(&self) {
        assert!(self.cores >= 1);
        if self.decouple.any() {
            let ring = self.ring.as_ref().expect("decoupling requires a ring");
            assert_eq!(ring.nodes, self.cores);
        }
        if let Some(ring) = &self.ring {
            ring.assert_valid();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        MachineConfig::conventional(16).assert_valid();
        MachineConfig::helix_rc(16).assert_valid();
        MachineConfig::helix_rc(2).assert_valid();
    }

    #[test]
    #[should_panic(expected = "requires a ring")]
    fn decouple_without_ring_rejected() {
        let mut cfg = MachineConfig::conventional(4);
        cfg.decouple = DecoupleConfig::all();
        cfg.assert_valid();
    }

    #[test]
    fn decouple_flags() {
        assert!(DecoupleConfig::all().any());
        assert!(!DecoupleConfig::none().any());
        let partial = DecoupleConfig {
            register: true,
            ..DecoupleConfig::none()
        };
        assert!(partial.any());
    }
}
