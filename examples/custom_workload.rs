//! Bring your own workload: express a pointer-based computation in the
//! IR, let the compiler analyze and parallelize it, and inspect what the
//! analysis found.
//!
//! Run with `cargo run --release --example custom_workload`.

use helix_rc::analysis::{analyze_loop, classify_registers, DepConfig, PointsTo};
use helix_rc::hcc::{compile, HccConfig};
use helix_rc::ir::cfg::LoopForest;
use helix_rc::ir::{AddrExpr, BinOp, ProgramBuilder, Ty};
use helix_rc::sim::{simulate, simulate_sequential, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A sparse graph relaxation: for each edge, read both endpoint
    // weights (shared), relax the heavier one, and track the number of
    // relaxations in an accumulator.
    let n = 2500i64;
    let nodes = 256i64;
    let mut b = ProgramBuilder::new("graph_relax");
    let src = b.region("src", (n as u64 + 1) * 8, Ty::I64);
    let dst = b.region("dst", (n as u64 + 1) * 8, Ty::I64);
    let weight = b.region("weight", (nodes as u64) * 8, Ty::I64);
    let out = b.region("out", 64, Ty::I64);
    // Build a deterministic edge list.
    b.counted_loop(0, n, 1, |b, i| {
        let h = b.reg();
        b.call(
            Some(h),
            helix_rc::ir::Intrinsic::PureHash,
            vec![helix_rc::ir::Operand::Reg(i)],
        );
        b.store(h, AddrExpr::region_indexed(src, i, 8, 0), Ty::I64);
        let h2 = b.reg();
        b.bin(h2, BinOp::Shr, h, 17i64);
        b.store(h2, AddrExpr::region_indexed(dst, i, 8, 0), Ty::I64);
    });
    let relaxations = b.reg();
    b.const_i(relaxations, 0);
    b.counted_loop(0, n, 1, |b, i| {
        let [s, d] = b.regs();
        b.load(s, AddrExpr::region_indexed(src, i, 8, 0), Ty::I64);
        b.bin(s, BinOp::And, s, nodes - 1);
        b.load(d, AddrExpr::region_indexed(dst, i, 8, 0), Ty::I64);
        b.bin(d, BinOp::And, d, nodes - 1);
        let [ws, wd] = b.regs();
        b.load(ws, AddrExpr::region_indexed(weight, s, 8, 0), Ty::I64);
        b.load(wd, AddrExpr::region_indexed(weight, d, 8, 0), Ty::I64);
        let heavier = b.reg();
        b.bin(heavier, BinOp::CmpGt, ws, wd);
        b.if_then(heavier, |b| {
            let nw = b.reg();
            b.bin(nw, BinOp::Add, wd, 1i64);
            b.store(nw, AddrExpr::region_indexed(weight, d, 8, 0), Ty::I64);
            b.bin(relaxations, BinOp::Add, relaxations, 1i64);
        });
    });
    b.store(relaxations, AddrExpr::region(out, 0), Ty::I64);
    let program = b.finish();

    // Peek at what the analysis sees in the hot loop.
    let forest = LoopForest::compute(&program.graph, program.graph.entry);
    let hot = forest
        .loops
        .iter()
        .map(|node| &node.lp)
        .max_by_key(|lp| lp.header)
        .unwrap();
    let config = DepConfig::full();
    let pts = PointsTo::analyze(&program, config.tier);
    let deps = analyze_loop(&program, hot, config, &pts);
    let classes = classify_registers(&program.graph, hot);
    println!("hot loop analysis:");
    println!("  loop-carried memory dependences: {}", deps.mem_deps.len());
    println!(
        "  shared access sites:             {}",
        deps.shared_sites().len()
    );
    println!(
        "  registers to communicate:        {}",
        classes.iter().filter(|c| c.must_communicate()).count()
    );
    println!(
        "  predictable registers:           {}",
        classes.iter().filter(|c| !c.must_communicate()).count()
    );

    // Parallelize and measure.
    let compiled = compile(&program, &HccConfig::v3(16))?;
    let fuel = 1 << 26;
    let seq = simulate_sequential(&program, &MachineConfig::conventional(16), fuel)?;
    let par = simulate(&compiled, &MachineConfig::helix_rc(16), fuel)?;
    assert!(par.race_violations.is_empty());
    println!(
        "\nspeedup on 16 cores: {:.2}x",
        seq.cycles as f64 / par.cycles as f64
    );
    println!(
        "({} segment(s); the relaxation dependence serializes only the shared table updates)",
        compiled.stats.segments
    );
    Ok(())
}
