//! Dynamic dependence profiling: the ground truth for Fig. 2.
//!
//! Runs the program in the interpreter and records, per target loop, the
//! *actual* cross-iteration memory dependences at word granularity. The
//! accuracy of a static analysis is then the fraction of its reported
//! dependences that are actual (paper §2.2: "average number of actual
//! data dependences compared to all dependences identified").

use helix_ir::cfg::NaturalLoop;
use helix_ir::interp::{Env, InterpError, StepEvent, Thread};
use helix_ir::trace::{InstSite, MemAccess, TraceSink};
use helix_ir::{BlockId, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Actual loop-carried dependences observed at runtime.
#[derive(Debug, Clone, Default)]
pub struct DynamicLoopDeps {
    /// Unordered canonical site pairs with an observed cross-iteration
    /// dependence (RAW, WAR, or WAW).
    pub pairs: BTreeSet<(InstSite, InstSite)>,
    /// Total iterations observed across invocations.
    pub iterations: u64,
    /// Number of times the loop was entered.
    pub invocations: u64,
}

#[derive(Debug, Default)]
struct WordState {
    last_writer: Option<(InstSite, u64)>,
    readers_since_write: BTreeMap<InstSite, u64>,
}

/// Sink that buffers memory events so the profiler can process them with
/// iteration context.
#[derive(Debug, Default)]
struct RecordSink {
    events: Vec<(InstSite, MemAccess)>,
}

impl TraceSink for RecordSink {
    fn on_mem(&mut self, site: InstSite, access: MemAccess) {
        self.events.push((site, access));
    }
}

fn canonical(a: InstSite, b: InstSite) -> (InstSite, InstSite) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Run `program` to completion and collect actual loop-carried memory
/// dependences for `lp`.
///
/// # Errors
///
/// Propagates interpreter faults; `max_steps` bounds the run.
pub fn observe_loop_deps(
    program: &Program,
    lp: &NaturalLoop,
    env: &mut Env,
    max_steps: u64,
) -> Result<DynamicLoopDeps, InterpError> {
    let mut out = DynamicLoopDeps::default();
    let mut thread = Thread::at_entry(program);
    let mut sink = RecordSink::default();

    let in_loop = |b: BlockId| lp.blocks.contains(&b);
    let mut active = in_loop(program.graph.entry);
    let mut iter: u64 = 0;
    let mut words: BTreeMap<u64, WordState> = BTreeMap::new();

    let mut steps = 0u64;
    while !thread.finished {
        if steps >= max_steps {
            return Err(InterpError::FuelExhausted);
        }
        steps += 1;
        let event = thread.step(program, env, &mut sink)?;

        // Process buffered memory events under the current iteration.
        if active {
            for (site, access) in sink.events.drain(..) {
                let first_word = access.addr / 8;
                let last_word = (access.addr + access.len.max(1) as u64 - 1) / 8;
                for w in first_word..=last_word {
                    let st = words.entry(w).or_default();
                    if access.is_store {
                        if let Some((writer, it)) = st.last_writer {
                            if it < iter {
                                out.pairs.insert(canonical(writer, site));
                            }
                        }
                        for (reader, it) in &st.readers_since_write {
                            if *it < iter {
                                out.pairs.insert(canonical(*reader, site));
                            }
                        }
                        st.readers_since_write.clear();
                        st.last_writer = Some((site, iter));
                    } else {
                        if let Some((writer, it)) = st.last_writer {
                            if it < iter {
                                out.pairs.insert(canonical(writer, site));
                            }
                        }
                        st.readers_since_write.insert(site, iter);
                    }
                }
            }
        } else {
            sink.events.clear();
        }

        if let StepEvent::Flow { from, to } = event {
            if to == lp.header {
                if active && in_loop(from) {
                    // Back edge: next iteration.
                    iter += 1;
                } else {
                    // Loop entry.
                    active = true;
                    iter = 0;
                    out.invocations += 1;
                    words.clear();
                }
            } else if from == lp.header && in_loop(to) && active {
                // The header dispatched into the body: an iteration runs.
                out.iterations += 1;
            } else if active && !in_loop(to) {
                active = false;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::cfg::LoopForest;
    use helix_ir::{AddrExpr, BinOp, Program, ProgramBuilder, Ty};

    fn first_loop(p: &Program) -> NaturalLoop {
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        forest
            .loops
            .iter()
            .min_by_key(|n| n.lp.header)
            .unwrap()
            .lp
            .clone()
    }

    fn observe(p: &Program) -> DynamicLoopDeps {
        let lp = first_loop(p);
        let mut env = Env::for_program(p);
        observe_loop_deps(p, &lp, &mut env, 10_000_000).unwrap()
    }

    /// a[i] = a[i] + 1 touches each word exactly once: no actual
    /// cross-iteration dependence.
    #[test]
    fn doall_loop_has_no_actual_deps() {
        let mut b = ProgramBuilder::new("doall");
        let r = b.region("a", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, 1i64);
            b.store(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
        });
        let p = b.finish();
        let d = observe(&p);
        assert_eq!(d.iterations, 100);
        assert_eq!(d.invocations, 1);
        assert!(d.pairs.is_empty());
    }

    /// a[i+1] = a[i] + 1: each store is read by the next iteration.
    #[test]
    fn recurrence_observed() {
        let mut b = ProgramBuilder::new("rec");
        let r = b.region("a", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, 1i64);
            b.store(x, AddrExpr::region_indexed(r, i, 8, 8), Ty::I64);
        });
        let p = b.finish();
        let d = observe(&p);
        assert_eq!(d.pairs.len(), 1, "one (load, store) actual pair");
    }

    /// Accumulator in memory: RAW and WAW pairs on the same cell.
    #[test]
    fn memory_accumulator_observed() {
        let mut b = ProgramBuilder::new("acc");
        let r = b.region("acc", 64, Ty::I64);
        b.counted_loop(0, 10, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region(r, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, i);
            b.store(x, AddrExpr::region(r, 0), Ty::I64);
        });
        let p = b.finish();
        let d = observe(&p);
        // (load,store) RAW + (store,store) WAW.
        assert_eq!(d.pairs.len(), 2);
    }

    /// Dependences inside one iteration are not loop-carried.
    #[test]
    fn intra_iteration_dep_ignored() {
        let mut b = ProgramBuilder::new("intra");
        let r = b.region("tmp", 8192, Ty::I64);
        b.counted_loop(0, 50, 1, |b, i| {
            let x = b.reg();
            b.store(i, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
        });
        let p = b.finish();
        let d = observe(&p);
        assert!(d.pairs.is_empty());
    }

    /// State from a previous invocation does not count.
    #[test]
    fn cross_invocation_deps_ignored() {
        let mut b = ProgramBuilder::new("inv");
        let r = b.region("cell", 64, Ty::I64);
        // Outer loop re-enters the inner loop twice; inner writes then
        // reads a fixed cell only once per invocation.
        b.counted_loop(0, 2, 1, |b, _outer| {
            b.counted_loop(0, 1, 1, |b, _inner| {
                let x = b.reg();
                b.load(x, AddrExpr::region(r, 0), Ty::I64);
                b.store(x, AddrExpr::region(r, 0), Ty::I64);
            });
        });
        let p = b.finish();
        // Target the *inner* loop (deeper header).
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let inner = forest
            .loops
            .iter()
            .max_by_key(|n| n.depth)
            .unwrap()
            .lp
            .clone();
        let mut env = Env::for_program(&p);
        let d = observe_loop_deps(&p, &inner, &mut env, 1_000_000).unwrap();
        assert_eq!(d.invocations, 2);
        assert!(
            d.pairs.is_empty(),
            "single-iteration invocations carry nothing"
        );
    }

    /// WAR dependences are observed.
    #[test]
    fn war_observed() {
        let mut b = ProgramBuilder::new("war");
        let r = b.region("a", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            // Read a[i+1] then write a[i]: next iteration writes what this
            // one read -> WAR with distance 1.
            b.load(x, AddrExpr::region_indexed(r, i, 8, 8), Ty::I64);
            b.store(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
        });
        let p = b.finish();
        let d = observe(&p);
        assert_eq!(d.pairs.len(), 1);
    }
}
