//! Lane-parallel batch simulation: decode a program once, then step
//! many independent machines as *lanes*.
//!
//! Campaigns are lane-shaped: hundreds of grid cells simulate the same
//! scenario program under machine configurations that differ only in
//! core count, ring parameters, or compiler generation. A
//! [`SimSession`] is built once per (program, plans) pair, decodes the
//! program a single time (`Arc<DecodedProgram>` shared by every lane),
//! and [`drain`](SimSession::drain)s all enqueued lanes.
//!
//! Draining is event-cooperative: lanes sit in a min-heap keyed by
//! each machine's [`next_event_at`](Machine::next_event_at) hint, and
//! each step advances the laggard lane until the next lane's event (or
//! at least one scheduling chunk, `CHUNK`). Only lanes with live work are ever
//! stepped; a lone surviving lane runs to completion in a single
//! slice. Finished lanes retire immediately and their allocations are
//! recycled into the session's [`MachinePool`], so later lanes (and
//! later batches on a reused session) build machines without
//! reallocating the big per-core and cache tables.
//!
//! Slicing uses [`Machine::run_slice`], whose trajectory is identical
//! to an unsliced [`Machine::run`], and lanes are fully independent,
//! so the schedule is pure policy: a lane's result is bit-identical to
//! running its configuration alone — the property the lane-exactness
//! regression tests pin across every committed scenario.

use crate::config::MachineConfig;
use crate::machine::{Machine, MachineSpares, RunReport, SimError};
use helix_hcc::LoopPlan;
use helix_ir::decode::DecodedProgram;
use helix_ir::Program;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Minimum number of cycles a scheduled lane advances per slice. Large
/// enough that slice bookkeeping is noise, small enough that short
/// lanes retire promptly.
const CHUNK: u64 = 1 << 15;

/// How many retired machines' allocations a pool keeps. Campaign
/// batches rarely run more lanes than this concurrently; beyond it,
/// spares are dropped rather than hoarded.
const POOL_CAP: usize = 64;

/// A bag of retired machines' reusable allocations (see
/// [`MachineSpares`]). Sessions recycle retired lanes through their
/// pool automatically; callers that run many sessions (e.g. a campaign
/// stepping through scenario chunks) can move the pool between them
/// with [`SimSession::take_pool`]/[`SimSession::set_pool`] so reuse
/// spans batches.
#[derive(Debug, Default)]
pub struct MachinePool {
    spares: Vec<MachineSpares>,
}

impl MachinePool {
    /// An empty pool.
    pub fn new() -> MachinePool {
        MachinePool::default()
    }

    /// Take spares for a machine of `shape` (see
    /// [`MachineSpares::shape`]), preferring an exact match. Returns
    /// empty spares when the pool is dry — building from those is just
    /// a from-scratch build.
    pub fn take(&mut self, shape: (usize, bool)) -> MachineSpares {
        if let Some(i) = self.spares.iter().position(|s| s.shape() == shape) {
            return self.spares.swap_remove(i);
        }
        self.spares.pop().unwrap_or_default()
    }

    /// Return spares to the pool (dropped beyond the pool cap).
    pub fn put(&mut self, spares: MachineSpares) {
        if self.spares.len() < POOL_CAP {
            self.spares.push(spares);
        }
    }

    /// Move every spare from `other` into this pool (bounded by the
    /// cap).
    pub fn merge(&mut self, other: MachinePool) {
        for s in other.spares {
            self.put(s);
        }
    }

    /// Number of pooled spares.
    pub fn len(&self) -> usize {
        self.spares.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.spares.is_empty()
    }
}

/// One enqueued lane: a machine configuration plus its cycle budget.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// Machine configuration for this lane.
    pub cfg: MachineConfig,
    /// Cycle budget (fuel) for this lane.
    pub fuel: u64,
}

/// One completed lane, tagged with the index its configuration was
/// enqueued under.
#[derive(Debug)]
pub struct LaneResult {
    /// Enqueue index of the lane (position in the order
    /// [`SimSession::enqueue`] was called).
    pub lane: usize,
    /// The lane's run outcome — exactly what a standalone
    /// [`Machine::run`] of the same configuration would return.
    pub result: Result<RunReport, SimError>,
}

/// A batch-simulation session over one (program, plans) pair.
///
/// Build once, [`enqueue`](SimSession::enqueue) any number of lane
/// configurations, then [`drain`](SimSession::drain). The program is
/// decoded at most once per session, lazily — a session whose lanes all
/// select the tree engine never decodes.
#[derive(Debug)]
pub struct SimSession<'p> {
    program: &'p Program,
    plans: &'p [LoopPlan],
    decoded: Option<Arc<DecodedProgram>>,
    lanes: Vec<LaneConfig>,
    pool: MachinePool,
}

impl<'p> SimSession<'p> {
    /// Open a session over a program and its parallel-loop plans
    /// (empty `plans` for sequential execution).
    pub fn new(program: &'p Program, plans: &'p [LoopPlan]) -> SimSession<'p> {
        SimSession {
            program,
            plans,
            decoded: None,
            lanes: Vec::new(),
            pool: MachinePool::new(),
        }
    }

    /// Open a session seeded with an already-shared decode (e.g. a
    /// campaign's per-scenario decode cache), so even the first lane
    /// skips decoding.
    pub fn with_decoded(
        program: &'p Program,
        plans: &'p [LoopPlan],
        decoded: Arc<DecodedProgram>,
    ) -> SimSession<'p> {
        SimSession {
            program,
            plans,
            decoded: Some(decoded),
            lanes: Vec::new(),
            pool: MachinePool::new(),
        }
    }

    /// Seed the session's machine pool (e.g. with spares recycled from
    /// a previous session), merging with whatever it already holds.
    pub fn set_pool(&mut self, pool: MachinePool) {
        self.pool.merge(pool);
    }

    /// Take the session's machine pool, leaving it empty — so spares
    /// retired here can seed the next session.
    pub fn take_pool(&mut self) -> MachinePool {
        std::mem::take(&mut self.pool)
    }

    /// Enqueue one lane; returns its lane index.
    pub fn enqueue(&mut self, cfg: MachineConfig, fuel: u64) -> usize {
        self.lanes.push(LaneConfig { cfg, fuel });
        self.lanes.len() - 1
    }

    /// Number of lanes currently enqueued.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The session's shared decode, decoding now if no lane has needed
    /// it yet.
    pub fn decoded(&mut self) -> Arc<DecodedProgram> {
        self.decoded
            .get_or_insert_with(|| Arc::new(helix_ir::decode::decode(self.program)))
            .clone()
    }

    /// Run every enqueued lane to completion and return the results in
    /// lane order. Lanes are scheduled event-cooperatively off a
    /// min-heap keyed by [`Machine::next_event_at`]: each step advances
    /// the laggard lane until the runner-up's next event (at least one
    /// `CHUNK`), and the last surviving lane runs to completion in one
    /// slice. A lane that finishes (or faults) retires immediately and
    /// its allocations recycle into the session pool. The queue is
    /// cleared, so the session can be reused for another batch — with
    /// the pool warm.
    pub fn drain(&mut self) -> Vec<LaneResult> {
        let lanes = std::mem::take(&mut self.lanes);
        let mut results: Vec<Option<LaneResult>> = (0..lanes.len()).map(|_| None).collect();
        // Build every machine up front; decoded lanes share one Arc and
        // retired shapes from the pool are reused where they fit.
        let mut active: Vec<Option<(u64, Machine<'p>)>> = Vec::with_capacity(lanes.len());
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(lanes.len());
        for (ix, lane) in lanes.into_iter().enumerate() {
            let shape = (lane.cfg.cores, lane.cfg.ring.is_some());
            let decoded = if lane.cfg.engine.is_decoded() {
                Some(self.decoded())
            } else {
                None
            };
            let spares = self.pool.take(shape);
            let machine = Machine::recycled(self.program, self.plans, lane.cfg, decoded, spares);
            heap.push(Reverse((machine.next_event_at(), ix)));
            active.push(Some((lane.fuel, machine)));
        }
        // A heap key is the lane's next-event hint as of its last push;
        // lanes only advance while popped, so keys are never stale.
        while let Some(Reverse((key, ix))) = heap.pop() {
            let (fuel, mut machine) = active[ix].take().expect("heap entry has a live lane");
            let until = match heap.peek() {
                // Advance to the runner-up's event so the laggard stays
                // the laggard, but always by at least one chunk so tied
                // lanes interleave coarsely instead of ping-ponging.
                Some(&Reverse((next, _))) => next.max(key.saturating_add(CHUNK)),
                None => u64::MAX,
            };
            match machine.run_slice(until, fuel) {
                Ok(None) => {
                    heap.push(Reverse((machine.next_event_at(), ix)));
                    active[ix] = Some((fuel, machine));
                }
                Ok(Some(report)) => {
                    results[ix] = Some(LaneResult {
                        lane: ix,
                        result: Ok(report),
                    });
                    self.pool.put(machine.into_spares());
                }
                Err(e) => {
                    results[ix] = Some(LaneResult {
                        lane: ix,
                        result: Err(e),
                    });
                    self.pool.put(machine.into_spares());
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("lane retired"))
            .collect()
    }
}

/// Convenience: run one configuration as a single-lane session — the
/// fallback the campaign's chaos-injected and budget-isolated cells
/// use, preserving per-cell failure isolation.
pub fn run_one(
    program: &Program,
    plans: &[LoopPlan],
    cfg: MachineConfig,
    fuel: u64,
) -> Result<RunReport, SimError> {
    let mut session = SimSession::new(program, plans);
    session.enqueue(cfg, fuel);
    session
        .drain()
        .pop()
        .expect("single-lane session yields one result")
        .result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineSel;
    use helix_ir::{AddrExpr, ProgramBuilder, Ty};

    fn axpy() -> Program {
        let mut b = ProgramBuilder::new("axpy");
        let data = b.region("data", 1 << 14, Ty::I64);
        b.counted_loop(0, 500, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
            b.alu_chain(x, 4);
            b.store(x, AddrExpr::region_indexed(data, i, 8, 0), Ty::I64);
        });
        b.finish()
    }

    /// Lanes of mixed configs land on exactly the standalone results.
    #[test]
    fn lanes_match_standalone_runs() {
        let program = axpy();
        let compiled = helix_hcc::compile(&program, &helix_hcc::HccConfig::v3(4)).unwrap();
        let cfgs = [
            MachineConfig::conventional(4),
            MachineConfig::helix_rc(4),
            MachineConfig::conventional(4).with_engine(EngineSel::Tree),
        ];
        let mut session = SimSession::new(&compiled.program, &compiled.plans);
        for cfg in &cfgs {
            session.enqueue(cfg.clone(), 1 << 24);
        }
        let results = session.drain();
        assert_eq!(results.len(), cfgs.len());
        for (ix, cfg) in cfgs.iter().enumerate() {
            let alone = Machine::new(&compiled.program, &compiled.plans, cfg.clone())
                .run(1 << 24)
                .unwrap();
            let lane = results[ix].result.as_ref().unwrap();
            assert_eq!(results[ix].lane, ix);
            assert_eq!(lane.cycles, alone.cycles, "lane {ix}");
            assert_eq!(lane.mem_digest, alone.mem_digest, "lane {ix}");
            assert_eq!(lane.dyn_insts, alone.dyn_insts, "lane {ix}");
        }
    }

    /// A lane that exhausts its fuel retires with the error without
    /// disturbing its batch-mates.
    #[test]
    fn fuel_exhaustion_is_per_lane() {
        let program = axpy();
        let mut session = SimSession::new(&program, &[]);
        session.enqueue(MachineConfig::conventional(1), 100);
        session.enqueue(MachineConfig::conventional(1), 1 << 24);
        let results = session.drain();
        assert!(matches!(
            results[0].result,
            Err(SimError::FuelExhausted { .. })
        ));
        let ok = results[1].result.as_ref().unwrap();
        let alone = Machine::new(&program, &[], MachineConfig::conventional(1))
            .run(1 << 24)
            .unwrap();
        assert_eq!(ok.cycles, alone.cycles);
        assert_eq!(ok.mem_digest, alone.mem_digest);
    }

    /// An all-Tree session never decodes; a mixed one decodes once.
    #[test]
    fn decode_is_lazy_and_shared() {
        let program = axpy();
        let mut session = SimSession::new(&program, &[]);
        session.enqueue(
            MachineConfig::conventional(1).with_engine(EngineSel::Tree),
            1 << 24,
        );
        let _ = session.drain();
        assert!(session.decoded.is_none(), "tree-only batch must not decode");
        session.enqueue(MachineConfig::conventional(1), 1 << 24);
        session.enqueue(MachineConfig::conventional(1), 1 << 24);
        let _ = session.drain();
        assert!(session.decoded.is_some());
    }

    /// Reused sessions rebuild machines from recycled spares — across
    /// rounds, shapes, and engines — and every lane still lands on the
    /// full standalone report, field for field.
    #[test]
    fn pool_recycling_is_exact() {
        let program = axpy();
        let compiled = helix_hcc::compile(&program, &helix_hcc::HccConfig::v3(4)).unwrap();
        let cfgs = [
            MachineConfig::helix_rc(4),
            MachineConfig::conventional(2),
            MachineConfig::conventional(4).with_engine(EngineSel::Tree),
        ];
        let mut session = SimSession::new(&compiled.program, &compiled.plans);
        for round in 0..3 {
            for cfg in &cfgs {
                session.enqueue(cfg.clone(), 1 << 24);
            }
            let results = session.drain();
            for (ix, cfg) in cfgs.iter().enumerate() {
                let alone = Machine::new(&compiled.program, &compiled.plans, cfg.clone())
                    .run(1 << 24)
                    .unwrap();
                let lane = results[ix].result.as_ref().unwrap();
                assert_eq!(
                    format!("{lane:?}"),
                    format!("{alone:?}"),
                    "round {round} lane {ix}"
                );
            }
            assert!(
                !session.pool.is_empty(),
                "retired lanes must land in the pool"
            );
        }
    }

    /// A pool handed from one session to another keeps working: the
    /// receiving session builds from foreign spares and stays exact.
    #[test]
    fn pool_handoff_between_sessions_is_exact() {
        let program = axpy();
        let cfg = MachineConfig::conventional(2);
        let mut first = SimSession::new(&program, &[]);
        first.enqueue(cfg.clone(), 1 << 24);
        let baseline = first.drain().pop().unwrap().result.unwrap();
        let pool = first.take_pool();
        assert!(first.pool.is_empty());

        let mut second = SimSession::new(&program, &[]);
        second.set_pool(pool);
        second.enqueue(cfg, 1 << 24);
        let reused = second.drain().pop().unwrap().result.unwrap();
        assert_eq!(format!("{reused:?}"), format!("{baseline:?}"));
    }

    /// run_one matches a plain Machine::run.
    #[test]
    fn run_one_matches_machine_run() {
        let program = axpy();
        let cfg = MachineConfig::conventional(1);
        let one = run_one(&program, &[], cfg.clone(), 1 << 24).unwrap();
        let alone = Machine::new(&program, &[], cfg).run(1 << 24).unwrap();
        assert_eq!(one.cycles, alone.cycles);
        assert_eq!(one.mem_digest, alone.mem_digest);
    }
}
