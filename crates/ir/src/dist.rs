//! Iteration-shape distributions for workload generation.
//!
//! The paper characterizes irregular programs by the *distribution* of
//! their loop iteration lengths (Fig. 4a) rather than by any single
//! instance, so the declarative scenario subsystem parameterizes
//! generated loops the same way: a [`Distribution`] describes how much
//! work each iteration performs, and
//! [`ProgramBuilder::init_region_from_dist`](crate::ProgramBuilder::init_region_from_dist)
//! bakes one concrete, seed-deterministic sample of it into a program as
//! a per-iteration work table.
//!
//! Sampling is pure integer arithmetic over [`SplitMix64`], so the same
//! `(distribution, seed)` pair produces bit-identical programs on every
//! platform.

use crate::rng::SplitMix64;

/// A distribution over per-iteration work amounts (in abstract work
/// units; the generator decides what one unit costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Every iteration performs exactly `value` units.
    Fixed {
        /// The constant amount.
        value: i64,
    },
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Mostly `short` iterations with a `long` burst roughly every
    /// `period` iterations — the "bursty" shape of irregular workloads
    /// whose rare slow paths dominate (e.g. 177.mesa's texture spans).
    Bursty {
        /// Work units of the common case.
        short: i64,
        /// Work units of the burst.
        long: i64,
        /// Expected iterations between bursts (>= 1).
        period: i64,
    },
    /// Geometric with expected value ~`mean`, capped at `cap` — the
    /// long-tailed shape of Fig. 4a's iteration-length CDF.
    Geometric {
        /// Expected value of the uncapped distribution (>= 1).
        mean: i64,
        /// Inclusive upper bound on samples.
        cap: i64,
    },
}

impl Distribution {
    /// Draw one sample. All arms clamp their result to be >= 1 so a
    /// generated loop body never degenerates to zero work.
    pub fn sample(&self, rng: &mut SplitMix64) -> i64 {
        let v = match *self {
            Distribution::Fixed { value } => value,
            Distribution::Uniform { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                lo + rng.next_below((hi - lo + 1) as u64) as i64
            }
            Distribution::Bursty {
                short,
                long,
                period,
            } => {
                if rng.next_below(period.max(1) as u64) == 0 {
                    long
                } else {
                    short
                }
            }
            Distribution::Geometric { mean, cap } => {
                // Count failures of a p = 1/mean trial: integer-only, so
                // bit-exact across platforms (no libm).
                let mean = mean.max(1) as u64;
                let mut k = 1i64;
                while k < cap && rng.next_below(mean) != 0 {
                    k += 1;
                }
                k
            }
        };
        v.max(1)
    }

    /// Expected value (approximate for `Geometric`, which is capped).
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Fixed { value } => value as f64,
            Distribution::Uniform { lo, hi } => (lo.min(hi) + lo.max(hi)) as f64 / 2.0,
            Distribution::Bursty {
                short,
                long,
                period,
            } => {
                let p = 1.0 / period.max(1) as f64;
                p * long as f64 + (1.0 - p) * short as f64
            }
            Distribution::Geometric { mean, cap } => (mean as f64).min(cap as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(d: Distribution, n: usize) -> Vec<i64> {
        let mut rng = SplitMix64::new(99);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn fixed_is_constant() {
        assert!(samples(Distribution::Fixed { value: 7 }, 100)
            .iter()
            .all(|&v| v == 7));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        for v in samples(Distribution::Uniform { lo: 3, hi: 9 }, 1000) {
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn bursty_mixes_short_and_long() {
        let vs = samples(
            Distribution::Bursty {
                short: 2,
                long: 50,
                period: 8,
            },
            1000,
        );
        let longs = vs.iter().filter(|&&v| v == 50).count();
        assert!(vs.iter().all(|&v| v == 2 || v == 50));
        // Expected 125 bursts; allow wide slack.
        assert!((40..=300).contains(&longs), "{longs} bursts");
    }

    #[test]
    fn geometric_respects_cap_and_floor() {
        let vs = samples(Distribution::Geometric { mean: 6, cap: 40 }, 2000);
        assert!(vs.iter().all(|&v| (1..=40).contains(&v)));
        let avg = vs.iter().sum::<i64>() as f64 / vs.len() as f64;
        assert!((2.0..=12.0).contains(&avg), "mean drifted: {avg}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Distribution::Geometric { mean: 5, cap: 99 };
        assert_eq!(samples(d, 500), samples(d, 500));
    }

    #[test]
    fn means_are_sensible() {
        assert_eq!(Distribution::Fixed { value: 4 }.mean(), 4.0);
        assert_eq!(Distribution::Uniform { lo: 2, hi: 6 }.mean(), 4.0);
        let b = Distribution::Bursty {
            short: 2,
            long: 18,
            period: 4,
        };
        assert_eq!(b.mean(), 6.0);
    }
}
