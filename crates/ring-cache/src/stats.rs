//! Ring-cache traffic statistics, including the sharing profile that
//! backs Fig. 4b (producer→first-consumer hop distance) and Fig. 4c
//! (consumers per shared value).

use serde::{Deserialize, Serialize};

/// Counters and histograms collected by the ring cache.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RingStats {
    /// Stores injected by cores.
    pub stores: u64,
    /// Loads issued by cores.
    pub loads: u64,
    /// Loads that hit the local node array.
    pub load_hits: u64,
    /// Loads serviced by the owner node (ring miss).
    pub load_misses: u64,
    /// Signals injected by cores.
    pub signals: u64,
    /// Messages forwarded node-to-node (all lanes).
    pub forwards: u64,
    /// Cycles a message spent stalled for link credits.
    pub credit_stalls: u64,
    /// Store injections rejected for a full injection queue.
    pub injection_backpressure: u64,
    /// Dirty lines written back on eviction at their owner.
    pub evict_writebacks: u64,
    /// Dirty lines written back by end-of-loop flushes.
    pub flush_writebacks: u64,
    /// Histogram of producer→first-consumer hop distances (index =
    /// distance; 0 unused on a ring with distinct producer/consumer).
    pub first_consumer_distance: Vec<u64>,
    /// Histogram of consumers per produced value (index = consumer
    /// count).
    pub consumers_per_value: Vec<u64>,
}

impl RingStats {
    /// Load hit rate in [0, 1]; 1 when no loads were issued.
    pub fn hit_rate(&self) -> f64 {
        if self.loads == 0 {
            1.0
        } else {
            self.load_hits as f64 / self.loads as f64
        }
    }

    pub(crate) fn bump(hist: &mut Vec<u64>, idx: usize) {
        if hist.len() <= idx {
            hist.resize(idx + 1, 0);
        }
        hist[idx] += 1;
    }

    /// Normalized distance distribution (fractions summing to 1).
    pub fn distance_distribution(&self) -> Vec<f64> {
        normalize(&self.first_consumer_distance)
    }

    /// Normalized consumer-count distribution.
    pub fn consumer_distribution(&self) -> Vec<f64> {
        normalize(&self.consumers_per_value)
    }
}

fn normalize(hist: &[u64]) -> Vec<f64> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    hist.iter().map(|&v| v as f64 / total as f64).collect()
}

/// One sharing epoch: `(producer node, consumers-this-epoch bitmask,
/// first consumer recorded?)`.
type Epoch = (usize, u64, bool);

/// Per-address sharing epoch used to build the Fig. 4 histograms.
///
/// Stored in an open-addressing table keyed by `addr + 1` (zero = empty
/// slot) — this sits on the ring's store/load injection path, and the
/// histograms it feeds are order-independent, so hash iteration order
/// is immaterial.
#[derive(Debug, Clone)]
pub(crate) struct SharingProfile {
    keys: Vec<u64>, // addr + 1; 0 = empty
    vals: Vec<Epoch>,
    live: usize,
    mask: usize,
}

impl Default for SharingProfile {
    fn default() -> Self {
        SharingProfile::with_capacity_pow2(1 << 10)
    }
}

impl SharingProfile {
    fn with_capacity_pow2(cap: usize) -> SharingProfile {
        debug_assert!(cap.is_power_of_two());
        SharingProfile {
            keys: vec![0; cap],
            vals: vec![(0, 0, false); cap],
            live: 0,
            mask: cap - 1,
        }
    }

    fn probe(&self, key: u64) -> usize {
        let mut i = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask;
        loop {
            let k = self.keys[i];
            if k == key || k == 0 {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let bigger = SharingProfile::with_capacity_pow2(self.keys.len() * 2);
        let old = std::mem::replace(self, bigger);
        for (k, v) in old.keys.into_iter().zip(old.vals) {
            if k != 0 {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = v;
                self.live += 1;
            }
        }
    }

    /// A store by `node` begins a new epoch for `addr`; the previous
    /// epoch's consumer count is recorded.
    pub fn on_store(&mut self, stats: &mut RingStats, addr: u64, node: usize) {
        if (self.live + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let key = addr + 1;
        let i = self.probe(key);
        if self.keys[i] == key {
            let (_, consumers, _) = self.vals[i];
            let n = consumers.count_ones() as usize;
            if n > 0 {
                RingStats::bump(&mut stats.consumers_per_value, n);
            }
        } else {
            self.keys[i] = key;
            self.live += 1;
        }
        self.vals[i] = (node, 0, false);
    }

    /// A load by `node` consumes the current value of `addr`.
    pub fn on_load(&mut self, stats: &mut RingStats, addr: u64, node: usize, ring_nodes: usize) {
        let key = addr + 1;
        let i = self.probe(key);
        if self.keys[i] != key {
            return;
        }
        let (producer, consumers, first_done) = &mut self.vals[i];
        if *producer == node {
            return;
        }
        if !*first_done {
            let dist = (node + ring_nodes - *producer) % ring_nodes;
            RingStats::bump(&mut stats.first_consumer_distance, dist);
            *first_done = true;
        }
        *consumers |= 1 << (node as u64 & 63);
    }

    /// Finalize all epochs (end of loop).
    pub fn finish(&mut self, stats: &mut RingStats) {
        for (k, (_, consumers, _)) in self.keys.iter_mut().zip(self.vals.iter()) {
            if *k != 0 {
                let n = consumers.count_ones() as usize;
                if n > 0 {
                    RingStats::bump(&mut stats.consumers_per_value, n);
                }
                *k = 0;
            }
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_profile_counts_consumers_and_distance() {
        let mut stats = RingStats::default();
        let mut prof = SharingProfile::default();
        // Producer at node 2; consumers at 5 (first), 9, 9 (dup).
        prof.on_store(&mut stats, 0x100, 2);
        prof.on_load(&mut stats, 0x100, 5, 16);
        prof.on_load(&mut stats, 0x100, 9, 16);
        prof.on_load(&mut stats, 0x100, 9, 16);
        // Next store finalizes the epoch.
        prof.on_store(&mut stats, 0x100, 7);
        assert_eq!(stats.first_consumer_distance[3], 1); // 5 - 2
        assert_eq!(stats.consumers_per_value[2], 1); // two distinct consumers
                                                     // Epoch with no consumers records nothing.
        prof.on_store(&mut stats, 0x100, 1);
        assert_eq!(stats.consumers_per_value.iter().sum::<u64>(), 1);
        prof.on_load(&mut stats, 0x100, 2, 16);
        prof.finish(&mut stats);
        assert_eq!(stats.consumers_per_value.iter().sum::<u64>(), 2);
    }

    #[test]
    fn producer_self_read_not_a_consumer() {
        let mut stats = RingStats::default();
        let mut prof = SharingProfile::default();
        prof.on_store(&mut stats, 0x8, 3);
        prof.on_load(&mut stats, 0x8, 3, 8);
        prof.finish(&mut stats);
        assert!(stats.consumers_per_value.is_empty());
        assert!(stats.first_consumer_distance.is_empty());
    }

    #[test]
    fn hit_rate() {
        let mut s = RingStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        s.loads = 10;
        s.load_hits = 9;
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn distributions_normalize() {
        let mut s = RingStats::default();
        RingStats::bump(&mut s.first_consumer_distance, 1);
        RingStats::bump(&mut s.first_consumer_distance, 3);
        RingStats::bump(&mut s.first_consumer_distance, 3);
        let d = s.distance_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[3] - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.consumer_distribution().is_empty());
    }
}
