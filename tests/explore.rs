//! Workspace tests for `helix explore`: the report must be
//! seed-deterministic byte for byte, every oracle must provably fire on
//! deliberately broken input (mutation-style negative tests — an oracle
//! that can't fail gates nothing), shrinking must preserve the
//! triggering property, and the committed 1000-series scenarios must
//! pass the full oracle battery (they are explore-curated).
//!
//! Also home to the regression pin for the guard-branch bypass-sync
//! compiler bug the explore fuzzer caught: per-segment wait/signal
//! placement splits edges, and later segments must treat the split
//! blocks as loop members or shared accesses in the other branch of a
//! guard execute outside their window.

use helix_rc::explore::{
    amdahl_bound, examine_spec, oracle_amdahl_bound, oracle_coverage_sum, oracle_report_agreement,
    oracle_sanity, run_explore, shrink_spec, ExploreOptions,
};
use helix_rc::hcc::{compile, HccConfig};
use helix_rc::scenario::NestRow;
use helix_rc::sim::{simulate, simulate_sequential, MachineConfig, RaceViolation};
use helix_rc::workloads::{builtin_spec, generate, generated_spec, Scale, ScenarioSpec};

const FUEL: u64 = 1 << 26;

fn smoke_opts() -> ExploreOptions {
    ExploreOptions {
        seed: 0,
        budget: 1,
        cores: 4,
        fuel: FUEL,
        export_dir: None,
    }
}

// ---------------------------------------------------------------------
// Seed determinism
// ---------------------------------------------------------------------

/// Same seed + budget => byte-identical report JSON (the acceptance
/// criterion CI's explore-smoke job relies on).
#[test]
fn explore_report_is_byte_identical_across_runs() {
    let opts = ExploreOptions {
        seed: 42,
        budget: 3,
        ..smoke_opts()
    };
    let a = run_explore(&opts).expect("explore runs");
    let b = run_explore(&opts).expect("explore runs");
    assert_eq!(a.to_json(), b.to_json(), "same seed+budget must be stable");
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.specs_run, 3);

    let other = run_explore(&ExploreOptions {
        seed: 43,
        budget: 3,
        ..smoke_opts()
    })
    .expect("explore runs");
    assert_ne!(
        a.to_json(),
        other.to_json(),
        "a different seed must explore different specs"
    );
}

// ---------------------------------------------------------------------
// Mutation-style negative tests: each oracle fires on broken input
// ---------------------------------------------------------------------

/// A real run report to mutate (the smallest committed scenario keeps
/// this cheap).
fn baseline_report() -> helix_rc::sim::RunReport {
    let spec = builtin_spec("183.equake").expect("builtin");
    let program = generate(&spec, Scale::Test).expect("generates");
    simulate_sequential(&program, &MachineConfig::conventional(2), FUEL).expect("runs")
}

#[test]
fn report_agreement_oracle_fires_on_every_mutated_observable() {
    let base = baseline_report();
    assert!(
        oracle_report_agreement(&base, &base, "self").is_ok(),
        "a report must agree with itself"
    );
    type Mutation = (&'static str, Box<dyn Fn(&mut helix_rc::sim::RunReport)>);
    let mutations: Vec<Mutation> = vec![
        ("cycles", Box::new(|r| r.cycles += 1)),
        ("mem_digest", Box::new(|r| r.mem_digest ^= 1)),
        ("dyn_insts", Box::new(|r| r.dyn_insts += 1)),
        ("iterations", Box::new(|r| r.iterations += 1)),
        ("loop_invocations", Box::new(|r| r.loop_invocations += 1)),
        ("l1_hits", Box::new(|r| r.mem_stats.l1_hits += 1)),
        ("l1_misses", Box::new(|r| r.mem_stats.l1_misses += 1)),
        (
            "protocol_errors",
            Box::new(|r| r.protocol_errors.push("injected".into())),
        ),
        (
            "race_violations",
            Box::new(|r| {
                r.race_violations.push(RaceViolation::UnprotectedSharing {
                    addr: 0x40,
                    a: 0,
                    b: 1,
                })
            }),
        ),
    ];
    for (what, mutate) in mutations {
        let mut broken = base.clone();
        mutate(&mut broken);
        assert!(
            oracle_report_agreement(&base, &broken, what).is_err(),
            "agreement oracle must fire on a mutated {what}"
        );
    }
}

#[test]
fn sanity_oracle_fires_on_dirty_reports() {
    let base = baseline_report();
    assert!(oracle_sanity(&base, "clean").is_ok());

    let mut raced = base.clone();
    raced
        .race_violations
        .push(RaceViolation::UnprotectedSharing {
            addr: 0x80,
            a: 0,
            b: 3,
        });
    assert!(
        oracle_sanity(&raced, "raced").is_err(),
        "sanity oracle must fire on race violations"
    );

    let mut protocol = base.clone();
    protocol.protocol_errors.push("missing signal".into());
    assert!(
        oracle_sanity(&protocol, "protocol").is_err(),
        "sanity oracle must fire on protocol errors"
    );
}

fn nest_row(name: &str, weight: f64, glue_weight: f64) -> NestRow {
    NestRow {
        name: name.into(),
        weight,
        glue_weight,
        coverage: 0.9,
        plans: 1,
        seq_cycles: 1000,
        helix_cycles: 500,
        speedup: 2.0,
    }
}

#[test]
fn coverage_sum_oracle_fires_when_weights_leak() {
    let good = [nest_row("a", 0.55, 0.05), nest_row("b", 0.3, 0.1)];
    assert!(oracle_coverage_sum(&good).is_ok());

    let leaking = [nest_row("a", 0.5, 0.0), nest_row("b", 0.3, 0.1)];
    assert!(
        oracle_coverage_sum(&leaking).is_err(),
        "coverage-sum oracle must fire when weights don't account for the program"
    );

    let out_of_range = [nest_row("a", 1.4, 0.0), nest_row("b", -0.4, 0.0)];
    assert!(
        oracle_coverage_sum(&out_of_range).is_err(),
        "coverage-sum oracle must fire on out-of-range weights"
    );
}

#[test]
fn amdahl_oracle_fires_above_the_bound() {
    // Full coverage at 8 cores bounds the computation speedup at 8x.
    assert!((amdahl_bound(1.0, 8) - 8.0).abs() < 1e-9);
    assert!(oracle_amdahl_bound(7.5, 1.0, 8).is_ok());
    assert!(
        oracle_amdahl_bound(9.5, 1.0, 8).is_err(),
        "amdahl oracle must fire when speedup exceeds the bound"
    );
    // Zero coverage bounds it at 1x: any real speedup is a violation.
    assert!(oracle_amdahl_bound(2.0, 0.0, 8).is_err());
    // Degenerate speedups are broken accounting, not wins.
    assert!(oracle_amdahl_bound(0.0, 1.0, 8).is_err());
    assert!(oracle_amdahl_bound(f64::NAN, 1.0, 8).is_err());
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// The shrunk spec still satisfies the triggering predicate, still
/// validates, round-trips through TOML, and is no larger than the
/// original.
#[test]
fn shrunk_spec_still_reproduces_the_property() {
    let spec = generated_spec(7, 0);
    spec.validate().expect("generated specs validate");
    assert!(spec.base_n >= 16, "generator floor keeps specs non-trivial");

    let mut keep = |s: &ScenarioSpec| s.base_n >= 8;
    let shrunk = shrink_spec(&spec, &mut keep, 64);
    assert!(
        shrunk.base_n >= 8,
        "shrunk spec must still satisfy the triggering property"
    );
    assert!(
        shrunk.base_n < spec.base_n,
        "shrinking must make progress on a halvable dimension"
    );
    shrunk.validate().expect("shrunk specs stay valid");
    let reparsed = ScenarioSpec::from_toml(&shrunk.to_toml()).expect("shrunk TOML parses");
    assert_eq!(reparsed, shrunk, "shrunk TOML must round-trip exactly");
}

// ---------------------------------------------------------------------
// The committed 1000-series is explore-curated
// ---------------------------------------------------------------------

/// Every committed 1000-series server-traffic scenario passes the full
/// oracle battery — the same bar generated specs are held to.
#[test]
fn committed_1000_series_passes_the_oracle_battery() {
    for name in ["1000.openloop", "1010.closedloop", "1020.tailburst"] {
        let spec = builtin_spec(name).unwrap_or_else(|| panic!("{name} not built in"));
        let exam = examine_spec(&spec, &smoke_opts());
        assert!(
            exam.failures.is_empty(),
            "{name}: oracle failures: {:?}",
            exam.failures
        );
        let metrics = exam
            .metrics
            .unwrap_or_else(|| panic!("{name}: no frontier metrics"));
        assert!(metrics.speedup > 1.0, "{name}: no parallel win");
    }
}

// ---------------------------------------------------------------------
// Regression: guard-branch bypass synchronization
// ---------------------------------------------------------------------

/// The explore fuzzer's own auto-shrunk repro of the wrong-code bug it
/// caught (`gen.0000000000000000.2`, shrunk by [`shrink_spec`] to
/// `base_n = 16` with no prefix phases): a guard whose branches do
/// memory work, followed by a shared pointer-chase in a later segment.
/// The earlier segment's wait/signal placement splits the guard's
/// branch edge; before the fix, the later segment's reachability
/// analysis treated the split block as a loop exit, skipped the body,
/// and never placed the bypass signal — so the shared chase ran outside
/// its window (OutsideSegment races) and memory diverged. The trigger
/// is data-dependent (the racing hops must collide on a word), so the
/// shrunk spec is embedded verbatim rather than rebuilt by hand.
const GUARD_BRANCH_REPRO: &str = r#"
name = "t.guardsync"
description = "guarded memory branches ahead of a shared pointer-chase"
kind = "int"
base_n = 16
seed = -537132696929009172

[[region]]
name = "in"
size = "n+1"
elem = "i64"

[[region]]
name = "mid"
size = "n+1"
elem = "i64"

[[region]]
name = "grid"
size = "1024"
elem = "i64"

[[region]]
name = "tab"
size = "256"
elem = "i64"

[[region]]
name = "lens"
size = "n+1"
elem = "i64"

[[region]]
name = "out"
size = "8"
elem = "i64"

[[phase]]
kind = "hot_loop"
trips = "n"
input = "mid"

[[phase.ops]]
kind = "guard"
mask = 255

[[phase.ops.then]]
kind = "stream"
region = "grid"
stride = 256

[[phase.ops.else]]
kind = "store"
region = "mid"

[[phase.ops]]
kind = "ptr_chase"
region = "tab"
hops = 1
mask = 15

[run]
cores = 4
compiler = "v3"
machines = ["sequential", "conventional"]
fuel = 134217728
"#;

#[test]
fn guarded_shared_accesses_stay_inside_their_windows() {
    let spec = ScenarioSpec::from_toml(GUARD_BRANCH_REPRO).expect("repro TOML parses");
    spec.validate().expect("trigger spec validates");
    let program = generate(&spec, Scale::Test).expect("generates");
    let compiled = compile(&program, &HccConfig::v3(4)).expect("compiles");
    let parallel =
        simulate(&compiled, &MachineConfig::helix_rc(4), FUEL).expect("parallel run completes");
    assert!(
        parallel.race_violations.is_empty(),
        "guard-branch shared accesses ran outside their windows: {:?}",
        parallel.race_violations
    );
    assert!(
        parallel.protocol_errors.is_empty(),
        "{:?}",
        parallel.protocol_errors
    );
    // Functional equivalence: the compiled program run sequentially and
    // in parallel must end with identical memory (the two runs share
    // the __shared_vars region, so digests are comparable).
    let sequential = simulate_sequential(&compiled.program, &MachineConfig::conventional(4), FUEL)
        .expect("sequential run completes");
    assert_eq!(
        sequential.mem_digest, parallel.mem_digest,
        "guard-branch bypass sync regressed: parallel memory diverges"
    );
}
