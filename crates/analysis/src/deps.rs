//! Loop-carried data-dependence analysis.
//!
//! Combines the points-to solution ([`PointsTo`]), the affine address
//! model ([`AffineCtx`]), and loop-local liveness to report every
//! loop-carried dependence of a loop: memory dependences as pairs of
//! instruction sites, register dependences as a set of registers, and
//! hidden-state dependences from stateful library calls.

use crate::affine::{relate, AffineCtx, AffineRelation, LinForm};
use crate::liveness::loop_carried_regs;
use crate::pts::{LocSet, PointsTo};
use crate::tier::AliasTier;
use helix_ir::cfg::{recognize_counted_loop, Dominators, NaturalLoop};
use helix_ir::{Inst, InstSite, Intrinsic, Program, Reg, Ty};
use std::collections::BTreeSet;

/// Dependence-analysis configuration: an alias tier plus the induction
/// (affine) refinement that HCCv2 added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DepConfig {
    /// Alias-analysis precision.
    pub tier: AliasTier,
    /// Whether cross-iteration affine address reasoning is enabled.
    pub affine_aware: bool,
}

impl DepConfig {
    /// The strongest configuration (HCCv2/v3 analyses).
    pub fn full() -> DepConfig {
        DepConfig {
            tier: AliasTier::LibCalls,
            affine_aware: true,
        }
    }

    /// The weakest configuration (HCCv1-era analysis): baseline pointer
    /// analysis, but classic array dependence testing (affine subscripts)
    /// — that predates VLLPA. HCCv2's improvements are the alias-tier
    /// extensions and the widened predictable-variable classes.
    pub fn baseline() -> DepConfig {
        DepConfig {
            tier: AliasTier::Vllpa,
            affine_aware: true,
        }
    }
}

/// Kind of a memory dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Read after write.
    Raw,
    /// Write after read.
    War,
    /// Write after write.
    Waw,
}

/// A loop-carried memory dependence between two instruction sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemDep {
    /// One endpoint (canonically the smaller site).
    pub a: InstSite,
    /// Other endpoint.
    pub b: InstSite,
    /// Dependence kind.
    pub kind: DepKind,
}

impl MemDep {
    fn canonical(x: InstSite, y: InstSite, kind: DepKind) -> MemDep {
        if x <= y {
            MemDep { a: x, b: y, kind }
        } else {
            MemDep { a: y, b: x, kind }
        }
    }
}

/// A memory access site inside the loop, with its analysis results.
#[derive(Debug, Clone)]
pub struct AccessInfo {
    /// Where the access is.
    pub site: InstSite,
    /// Whether it writes memory.
    pub is_store: bool,
    /// Access width in bytes (word-sized for intrinsic ranges).
    pub len: u64,
    /// Scalar type, when the access is a plain load/store.
    pub ty: Option<Ty>,
    /// Abstract locations it may touch.
    pub locs: LocSet,
    /// Affine address form, when derivable.
    pub lin: Option<LinForm>,
}

/// The complete dependence analysis result for one loop.
#[derive(Debug, Clone)]
pub struct LoopDeps {
    /// Loop-carried memory dependences.
    pub mem_deps: Vec<MemDep>,
    /// Loop-carried registers (live into the next iteration and defined
    /// in the loop).
    pub carried_regs: BTreeSet<Reg>,
    /// All memory access sites analyzed.
    pub accesses: Vec<AccessInfo>,
    /// The loop contains a call with hidden internal state (e.g. `rand`),
    /// an actual dependence no memory analysis can remove.
    pub hidden_state_dep: bool,
    /// The loop's counter step, when it is a recognized counted loop.
    pub counter_step: Option<i64>,
}

impl LoopDeps {
    /// Unordered site pairs of all identified memory dependences
    /// (the Fig. 2 "identified dependences" count).
    pub fn pair_set(&self) -> BTreeSet<(InstSite, InstSite)> {
        self.mem_deps.iter().map(|d| (d.a, d.b)).collect()
    }

    /// Sites participating in at least one loop-carried memory
    /// dependence: the accesses that must execute inside sequential
    /// segments.
    pub fn shared_sites(&self) -> BTreeSet<InstSite> {
        let mut out = BTreeSet::new();
        for d in &self.mem_deps {
            out.insert(d.a);
            out.insert(d.b);
        }
        out
    }
}

/// Analyze one loop of `program` under `config`.
///
/// `pts` must have been computed on the same program at `config.tier`.
pub fn analyze_loop(
    program: &Program,
    lp: &NaturalLoop,
    config: DepConfig,
    pts: &PointsTo,
) -> LoopDeps {
    debug_assert_eq!(pts.tier(), config.tier);
    let dom = Dominators::compute(&program.graph, program.graph.entry);
    let counted = recognize_counted_loop(&program.graph, lp);
    let affine_ctx = match (&counted, config.affine_aware) {
        (Some(c), true) => Some(AffineCtx::new(&program.graph, lp, &dom, c.counter)),
        _ => None,
    };
    let counter_step = counted.as_ref().map(|c| c.step);

    // Collect access sites.
    let mut accesses: Vec<AccessInfo> = Vec::new();
    let mut hidden_state_dep = false;
    for &b in &lp.blocks {
        for (idx, inst) in program.graph.block(b).insts.iter().enumerate() {
            let site = InstSite {
                block: b,
                index: idx,
            };
            match inst {
                Inst::Load { addr, ty, .. } | Inst::Store { addr, ty, .. } => {
                    let is_store = matches!(inst, Inst::Store { .. });
                    let len = ty.size();
                    let locs = pts.access_locs(program, site, addr, len);
                    let lin = affine_ctx
                        .as_ref()
                        .and_then(|ctx| ctx.addr_form(addr, site));
                    accesses.push(AccessInfo {
                        site,
                        is_store,
                        len,
                        ty: Some(*ty),
                        locs,
                        lin,
                    });
                }
                Inst::Call {
                    intrinsic, args, ..
                } => {
                    if config.tier.lib_call_semantics() {
                        match intrinsic {
                            Intrinsic::Rand => hidden_state_dep = true,
                            Intrinsic::Alloc | Intrinsic::Free => {
                                // Modelled as a scalable per-core arena
                                // allocator: no loop-carried dependence.
                            }
                            Intrinsic::PureHash | Intrinsic::SinApprox => {}
                            Intrinsic::Memcpy => {
                                // Reads [src..src+len), writes [dst..dst+len).
                                for (arg_idx, is_store) in [(1usize, false), (0usize, true)] {
                                    let locs =
                                        intrinsic_ptr_locs(program, pts, site, args, arg_idx);
                                    accesses.push(AccessInfo {
                                        site,
                                        is_store,
                                        len: 8,
                                        ty: None,
                                        locs,
                                        lin: None,
                                    });
                                }
                            }
                            Intrinsic::Memset => {
                                let locs = intrinsic_ptr_locs(program, pts, site, args, 0);
                                accesses.push(AccessInfo {
                                    site,
                                    is_store: true,
                                    len: 8,
                                    ty: None,
                                    locs,
                                    lin: None,
                                });
                            }
                        }
                    } else {
                        // Unknown library call: a universal read-write
                        // access plus a hidden-state dependence.
                        hidden_state_dep = true;
                        accesses.push(AccessInfo {
                            site,
                            is_store: true,
                            len: 8,
                            ty: None,
                            locs: LocSet::top(8),
                            lin: None,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    // Pairwise dependence tests.
    let mut deps: BTreeSet<MemDep> = BTreeSet::new();
    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            let (x, y) = (&accesses[i], &accesses[j]);
            if !x.is_store && !y.is_store {
                continue;
            }
            if i == j && !x.is_store {
                continue;
            }
            // Type filter (extension iii).
            if config.tier.type_filter() {
                if let (Some(ta), Some(tb)) = (x.ty, y.ty) {
                    if !ta.compatible(tb) {
                        continue;
                    }
                }
            }
            if !x.locs.may_overlap(&y.locs) {
                continue;
            }
            // Affine refinement (HCCv2 induction analysis).
            if let (Some(fa), Some(fb), Some(step)) = (&x.lin, &y.lin, counter_step) {
                match relate(fa, fb, step) {
                    Some(AffineRelation::SameIterationOnly) | Some(AffineRelation::NeverEqual) => {
                        continue;
                    }
                    Some(AffineRelation::CarriedDistance(_))
                    | Some(AffineRelation::EveryIteration)
                    | None => {}
                }
            }
            let kind = match (x.is_store, y.is_store) {
                (true, true) => DepKind::Waw,
                (true, false) | (false, true) => {
                    // Direction across iterations is unknowable statically;
                    // report both the flow and anti dependences as one RAW
                    // pair (the synchronization requirement is identical).
                    DepKind::Raw
                }
                (false, false) => unreachable!(),
            };
            deps.insert(MemDep::canonical(x.site, y.site, kind));
        }
    }

    let carried_regs = loop_carried_regs(&program.graph, lp);

    LoopDeps {
        mem_deps: deps.into_iter().collect(),
        carried_regs,
        accesses,
        hidden_state_dep,
        counter_step,
    }
}

fn intrinsic_ptr_locs(
    program: &Program,
    pts: &PointsTo,
    site: InstSite,
    args: &[helix_ir::Operand],
    arg_idx: usize,
) -> LocSet {
    use helix_ir::{AddrExpr, Operand};
    match args.get(arg_idx) {
        Some(Operand::Reg(r)) => {
            // Model the intrinsic's pointer argument as an indexed access
            // through that register (field precision intentionally Any).
            let addr = AddrExpr::ptr_indexed(*r, *r, 1, 0);
            pts.access_locs(program, site, &addr, 8)
        }
        _ => LocSet::top(8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::cfg::LoopForest;
    use helix_ir::{AddrExpr, BinOp, Operand, Program, ProgramBuilder};

    fn first_loop(p: &Program) -> NaturalLoop {
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        forest
            .loops
            .iter()
            .min_by_key(|n| n.lp.header)
            .expect("program has a loop")
            .lp
            .clone()
    }

    fn deps_at(p: &Program, config: DepConfig) -> LoopDeps {
        let pts = PointsTo::analyze(p, config.tier);
        analyze_loop(p, &first_loop(p), config, &pts)
    }

    /// a[i] = a[i] + 1: same-iteration only, no loop-carried dep with the
    /// affine refinement; conservative dep without it.
    #[test]
    fn doall_loop_needs_affine_analysis() {
        let mut b = ProgramBuilder::new("doall");
        let r = b.region("a", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, 1i64);
            b.store(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
        });
        let p = b.finish();

        let with = deps_at(&p, DepConfig::full());
        assert!(with.mem_deps.is_empty(), "affine filter removes the dep");

        let without = deps_at(
            &p,
            DepConfig {
                tier: AliasTier::LibCalls,
                affine_aware: false,
            },
        );
        assert!(!without.mem_deps.is_empty(), "conservative without affine");
    }

    /// a[i+1] = a[i]: a genuine distance-1 loop-carried dependence that
    /// must be reported at every configuration.
    #[test]
    fn distance_one_dep_always_reported() {
        let mut b = ProgramBuilder::new("carried");
        let r = b.region("a", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            b.store(x, AddrExpr::region_indexed(r, i, 8, 8), Ty::I64);
        });
        let p = b.finish();
        for tier in AliasTier::ALL {
            for affine in [false, true] {
                let d = deps_at(
                    &p,
                    DepConfig {
                        tier,
                        affine_aware: affine,
                    },
                );
                assert!(
                    !d.mem_deps.is_empty(),
                    "tier {tier} affine {affine} must report the dep"
                );
            }
        }
    }

    /// Accumulating into a fixed memory cell: loop-carried at every tier
    /// (EveryIteration affine relation).
    #[test]
    fn memory_accumulator_is_carried() {
        let mut b = ProgramBuilder::new("memacc");
        let r = b.region("acc", 64, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region(r, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, i);
            b.store(x, AddrExpr::region(r, 0), Ty::I64);
        });
        let p = b.finish();
        let d = deps_at(&p, DepConfig::full());
        assert!(!d.mem_deps.is_empty());
        assert_eq!(d.shared_sites().len(), 2);
    }

    /// Two disjoint arrays: the weak tier keeps them apart already
    /// (different regions), so no false dep.
    #[test]
    fn disjoint_regions_no_dep() {
        let mut b = ProgramBuilder::new("disjoint");
        let ra = b.region("a", 8192, Ty::I64);
        let rb = b.region("b", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(ra, i, 8, 0), Ty::I64);
            b.store(x, AddrExpr::region_indexed(rb, i, 8, 8), Ty::I64);
        });
        let p = b.finish();
        let d = deps_at(&p, DepConfig::full());
        assert!(d.mem_deps.is_empty());
    }

    /// Incompatible types: the data-type tier removes the false pair.
    ///
    /// The store's address is affine (`a[i]`), so its self-WAW is removed
    /// by the induction refinement; the hash-indexed f64 load cannot be
    /// disambiguated from the i32 store by address reasoning, only by the
    /// type filter.
    #[test]
    fn type_filter_removes_false_dep() {
        let mut b = ProgramBuilder::new("types");
        let r = b.region("mixed", 16384, Ty::I64);
        let perm = b.region("perm", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let [h, f] = b.regs();
            // Non-affine index loaded from a permutation table.
            b.load(h, AddrExpr::region_indexed(perm, i, 8, 0), Ty::I64);
            b.bin(h, BinOp::And, h, 511i64);
            b.load(f, AddrExpr::region_indexed(r, h, 16, 8), Ty::F64);
            let x = b.reg();
            b.un(x, helix_ir::UnOp::FToInt, f);
            b.store(x, AddrExpr::region_indexed(r, i, 16, 0), Ty::I32);
        });
        let p = b.finish();
        // Path tier (affine on, no type filter): i32/f64 pair reported.
        let weak = deps_at(
            &p,
            DepConfig {
                tier: AliasTier::PathBased,
                affine_aware: true,
            },
        );
        assert!(!weak.mem_deps.is_empty());
        // Type filter: i32 access cannot alias f64 access.
        let typed = deps_at(
            &p,
            DepConfig {
                tier: AliasTier::DataType,
                affine_aware: true,
            },
        );
        assert!(typed.mem_deps.is_empty());
    }

    /// A pure library call: clobbers everything below the lib-calls tier,
    /// free above it.
    #[test]
    fn lib_call_tier_removes_clobber() {
        let mut b = ProgramBuilder::new("libcall");
        let r = b.region("a", 8192, Ty::I64);
        b.counted_loop(0, 100, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            let h = b.reg();
            b.call(Some(h), Intrinsic::PureHash, vec![Operand::Reg(x)]);
            b.store(h, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
        });
        let p = b.finish();
        let weak = deps_at(
            &p,
            DepConfig {
                tier: AliasTier::DataType,
                affine_aware: true,
            },
        );
        assert!(
            !weak.mem_deps.is_empty(),
            "call clobber creates dependences below lib-call tier"
        );
        assert!(weak.hidden_state_dep);

        let full = deps_at(&p, DepConfig::full());
        assert!(full.mem_deps.is_empty(), "pure call is free at full tier");
        assert!(!full.hidden_state_dep);
    }

    /// `rand()` carries hidden state at every tier.
    #[test]
    fn rand_is_hidden_state_dep() {
        let mut b = ProgramBuilder::new("rand");
        b.counted_loop(0, 100, 1, |b, _i| {
            let x = b.reg();
            b.call(Some(x), Intrinsic::Rand, vec![]);
        });
        let p = b.finish();
        let full = deps_at(&p, DepConfig::full());
        assert!(full.hidden_state_dep);
    }

    #[test]
    fn carried_registers_reported() {
        let mut b = ProgramBuilder::new("regs");
        let acc = b.reg();
        b.const_i(acc, 0);
        b.counted_loop(0, 100, 1, |b, i| {
            b.bin(acc, BinOp::Add, acc, i);
        });
        let p = b.finish();
        let d = deps_at(&p, DepConfig::full());
        assert!(d.carried_regs.contains(&acc));
        // counter + acc + loop condition reg is not carried (set each
        // iteration before use).
        assert_eq!(d.carried_regs.len(), 2);
    }
}
