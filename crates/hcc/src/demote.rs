//! Shared-register demotion.
//!
//! Loop-carried registers that cannot be re-computed locally must be
//! communicated between cores. HCC maps each one to a specially-allocated
//! memory slot and rewrites its in-loop accesses as loads/stores of that
//! slot (paper §3.1: "shared variables are mapped to specially-allocated
//! memory locations ... their accesses within sequential segments occur
//! via memory operations").
//!
//! Demoted accesses are tagged with a placeholder segment id; segment
//! assignment later rewrites the tags with the final ids.

use helix_ir::{
    AddrExpr, BinOp, BlockId, Graph, Inst, InstOrigin, Intrinsic, Program, Reg, RegionId,
    SegmentId, SharedTag, TrafficClass, Ty, Value,
};
use std::collections::{BTreeMap, BTreeSet};

/// Placeholder segment id used between demotion and segment assignment.
pub const PLACEHOLDER_SEG: SegmentId = SegmentId(u32::MAX);

/// Result of demoting a set of registers for one loop.
#[derive(Debug, Clone)]
pub struct Demotion {
    /// Region holding the slots.
    pub region: RegionId,
    /// Byte offset of each demoted register's slot.
    pub slots: BTreeMap<Reg, i64>,
    /// Inferred scalar type per register.
    pub tys: BTreeMap<Reg, Ty>,
    /// Number of load/store instructions inserted.
    pub inserted: usize,
}

/// Failure to demote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemoteError {
    /// A register holds both integer and float values; its slot type
    /// cannot be inferred.
    MixedType(Reg),
}

impl std::fmt::Display for DemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemoteError::MixedType(r) => write!(f, "register {r} has mixed int/float defs"),
        }
    }
}

impl std::error::Error for DemoteError {}

/// Infer the scalar type a register carries, from its definitions across
/// the whole graph. Returns `None` when definitions disagree.
pub fn infer_reg_ty(graph: &Graph, reg: Reg) -> Option<Ty> {
    let mut saw_int = false;
    let mut saw_float = false;
    for (_, block) in graph.iter() {
        for inst in &block.insts {
            if inst.def() != Some(reg) {
                continue;
            }
            let is_float = match inst {
                Inst::Const { value, .. } => matches!(value, Value::Float(_)),
                Inst::Un { op, .. } => op.is_float(),
                Inst::Bin { op, .. } => op.is_float() && !is_float_comparison(*op),
                Inst::Load { ty, .. } => ty.is_float(),
                Inst::Call { intrinsic, .. } => matches!(intrinsic, Intrinsic::SinApprox),
                _ => false,
            };
            if is_float {
                saw_float = true;
            } else {
                saw_int = true;
            }
        }
    }
    match (saw_int, saw_float) {
        (true, false) | (false, false) => Some(Ty::I64),
        (false, true) => Some(Ty::F64),
        (true, true) => None,
    }
}

fn is_float_comparison(op: BinOp) -> bool {
    matches!(op, BinOp::FCmpLt | BinOp::FCmpGt)
}

/// Size of one shared-variable slot in bytes.
pub const SLOT_SIZE: i64 = 8;

/// Demote `regs` within the loop made of `loop_blocks`.
///
/// `region` is the shared-variable region (created by the caller);
/// `next_slot` is advanced as slots are assigned.
///
/// # Errors
///
/// Fails if any register's scalar type cannot be inferred.
pub fn demote_registers(
    program: &mut Program,
    loop_blocks: &BTreeSet<BlockId>,
    regs: &[Reg],
    region: RegionId,
    next_slot: &mut i64,
) -> Result<Demotion, DemoteError> {
    let mut tys = BTreeMap::new();
    for &r in regs {
        let ty = infer_reg_ty(&program.graph, r).ok_or(DemoteError::MixedType(r))?;
        tys.insert(r, ty);
    }
    let mut slots = BTreeMap::new();
    for &r in regs {
        slots.insert(r, *next_slot);
        *next_slot += SLOT_SIZE;
    }

    let tag = SharedTag {
        seg: PLACEHOLDER_SEG,
        class: TrafficClass::RegisterCarried,
    };
    let mut inserted = 0;
    for &b in loop_blocks {
        let block = program.graph.block_mut(b);
        // Plan insertions against original indices, then apply descending.
        // (pos, before: bool, inst)
        let mut edits: Vec<(usize, bool, Inst)> = Vec::new();
        for (idx, inst) in block.insts.iter().enumerate() {
            for &r in regs {
                if inst.uses().contains(&r) {
                    edits.push((
                        idx,
                        true,
                        Inst::Load {
                            dst: r,
                            addr: AddrExpr::region(region, slots[&r]),
                            ty: tys[&r],
                            shared: Some(tag),
                            origin: InstOrigin::Added,
                        },
                    ));
                }
                if inst.def() == Some(r) {
                    edits.push((
                        idx,
                        false,
                        Inst::Store {
                            src: r.into(),
                            addr: AddrExpr::region(region, slots[&r]),
                            ty: tys[&r],
                            shared: Some(tag),
                            origin: InstOrigin::Added,
                        },
                    ));
                }
            }
        }
        // Terminator uses: load before the terminator (i.e. append).
        if let Some(r) = block.term.uses() {
            if regs.contains(&r) {
                edits.push((
                    block.insts.len(),
                    true,
                    Inst::Load {
                        dst: r,
                        addr: AddrExpr::region(region, slots[&r]),
                        ty: tys[&r],
                        shared: Some(tag),
                        origin: InstOrigin::Added,
                    },
                ));
            }
        }
        inserted += edits.len();
        // Apply: descending position; at equal positions, the
        // store-after (before == false) must be applied first, because
        // inserting the load at `pos` would shift the instruction the
        // store has to follow. Final order: [load, inst, store].
        edits.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (pos, before, inst) in edits {
            let at = if before { pos } else { pos + 1 };
            block.insts.insert(at, inst);
        }
    }
    Ok(Demotion {
        region,
        slots,
        tys,
        inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::cfg::LoopForest;
    use helix_ir::interp::{run_to_completion, Env};
    use helix_ir::{Operand, ProgramBuilder, UnOp};

    /// Demoting a register must preserve sequential semantics: slot
    /// traffic is transparent when run on one thread.
    #[test]
    fn demotion_preserves_semantics() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("out", 64, Ty::I64);
        let state = b.reg();
        b.const_i(state, 1);
        b.counted_loop(0, 10, 1, |b, i| {
            let c = b.reg();
            b.bin(c, BinOp::And, i, 1i64);
            b.if_then(c, |b| {
                b.bin(state, BinOp::Mul, state, 3i64);
                b.bin(state, BinOp::Add, state, 1i64);
            });
        });
        b.store(state, AddrExpr::region(out, 0), Ty::I64);
        let mut p = b.finish();

        // Reference result.
        let mut env = Env::for_program(&p);
        run_to_completion(&p, &mut env).unwrap();
        let expect = env.mem.load(env.mem.base_of(out), Ty::I64).unwrap();

        // Demote and re-run. The runtime normally seeds the slot with the
        // loop-entry value; sequentially the first in-loop load must see
        // it, so store it before the loop via an extra setup program —
        // emulate by writing the slot after memory creation.
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let region = RegionId(p.regions.len() as u32);
        p.regions.push(helix_ir::RegionDecl {
            name: "__shared".into(),
            size: 4096,
            elem: Ty::I64,
        });
        let mut next = 0;
        let d = demote_registers(&mut p, &lp.blocks, &[state], region, &mut next).unwrap();
        assert!(d.inserted > 0);
        assert!(p.validate().is_ok());

        let mut env2 = Env::for_program(&p);
        // Seed the slot with the value `state` has at loop entry (1).
        let slot_addr = env2.mem.base_of(region) + d.slots[&state] as u64;
        env2.mem.store(slot_addr, Ty::I64, Value::Int(1)).unwrap();
        run_to_completion(&p, &mut env2).unwrap();
        let got = env2.mem.load(env2.mem.base_of(out), Ty::I64).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn load_inserted_before_use_store_after_def() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("out", 64, Ty::I64);
        let x = b.reg();
        b.const_i(x, 5);
        b.counted_loop(0, 3, 1, |b, _i| {
            b.bin(x, BinOp::Add, x, 1i64); // use + def in one instruction
        });
        b.store(x, AddrExpr::region(out, 0), Ty::I64);
        let mut p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let region = RegionId(p.regions.len() as u32);
        p.regions.push(helix_ir::RegionDecl {
            name: "__shared".into(),
            size: 64,
            elem: Ty::I64,
        });
        let mut next = 0;
        demote_registers(&mut p, &lp.blocks, &[x], region, &mut next).unwrap();
        // Find the rewritten body block: load, add, store.
        let body = p
            .graph
            .iter()
            .find(|(_, blk)| {
                blk.insts.len() == 3
                    && matches!(blk.insts[0], Inst::Load { .. })
                    && matches!(blk.insts[1], Inst::Bin { op: BinOp::Add, .. })
                    && matches!(blk.insts[2], Inst::Store { .. })
            })
            .map(|(id, _)| id);
        assert!(body.is_some(), "expected load/add/store triplet");
    }

    #[test]
    fn mixed_type_register_rejected() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("out", 64, Ty::I64);
        let x = b.reg();
        b.const_i(x, 5);
        b.counted_loop(0, 3, 1, |b, i| {
            let c = b.reg();
            b.bin(c, BinOp::And, i, 1i64);
            b.if_else(c, |b| b.const_i(x, 1), |b| b.const_f(x, 1.5));
        });
        b.store(x, AddrExpr::region(out, 0), Ty::I64);
        let mut p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let region = RegionId(p.regions.len() as u32);
        p.regions.push(helix_ir::RegionDecl {
            name: "__shared".into(),
            size: 64,
            elem: Ty::I64,
        });
        let mut next = 0;
        let r = demote_registers(&mut p, &lp.blocks, &[x], region, &mut next);
        assert_eq!(r.unwrap_err(), DemoteError::MixedType(x));
    }

    #[test]
    fn float_register_gets_float_slot() {
        let mut b = ProgramBuilder::new("t");
        let out = b.region("out", 64, Ty::F64);
        let x = b.reg();
        b.const_f(x, 0.0);
        b.counted_loop(0, 3, 1, |b, i| {
            let f = b.reg();
            b.un(f, UnOp::IntToF, i);
            b.bin(x, BinOp::FAdd, x, f);
            b.bin(x, BinOp::FMul, x, Operand::fimm(1.5));
        });
        b.store(x, AddrExpr::region(out, 0), Ty::F64);
        let mut p = b.finish();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let region = RegionId(p.regions.len() as u32);
        p.regions.push(helix_ir::RegionDecl {
            name: "__shared".into(),
            size: 64,
            elem: Ty::F64,
        });
        let mut next = 0;
        let d = demote_registers(&mut p, &lp.blocks, &[x], region, &mut next).unwrap();
        assert_eq!(d.tys[&x], Ty::F64);
    }

    #[test]
    fn infer_types() {
        let mut b = ProgramBuilder::new("t");
        let [i, f] = b.regs();
        b.const_i(i, 1);
        b.const_f(f, 1.0);
        let p = b.finish();
        assert_eq!(infer_reg_ty(&p.graph, i), Some(Ty::I64));
        assert_eq!(infer_reg_ty(&p.graph, f), Some(Ty::F64));
        // Undefined register defaults to integer.
        assert_eq!(infer_reg_ty(&p.graph, Reg(99)), Some(Ty::I64));
    }
}
