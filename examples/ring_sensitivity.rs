//! Ring-cache sensitivity on one workload: sweep the adjacent-node link
//! latency (the Fig. 11b axis) and watch the speedup degrade.
//!
//! Run with `cargo run --release --example ring_sensitivity`.

use helix_rc::experiment::{link_latency_settings, sweep_ring, ExperimentOptions};
use helix_rc::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let w = by_name("197.parser", Scale::Test).expect("suite workload");
    println!("== 197.parser: speedup vs. adjacent-node link latency (16 cores) ==\n");
    let points = sweep_ring(
        &w,
        16,
        &link_latency_settings(),
        &ExperimentOptions::default(),
    )?;
    let max = points.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
    for (label, speedup) in &points {
        let bar = "#".repeat(((speedup / max) * 40.0).round() as usize);
        println!("  {label:<10} {speedup:5.2}x {bar}");
    }
    println!("\nSingle-cycle hops are what current technology provides (paper §6.3).");
    Ok(())
}
