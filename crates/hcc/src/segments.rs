//! Sequential-segment formation.
//!
//! Shared accesses are partitioned into sequential segments such that
//! *different segments always access different shared data* (paper §4),
//! by taking connected components of the "may touch the same location"
//! relation over shared access sites. Splitting policy then controls how
//! many segments survive: HCCv3 splits aggressively (one segment per
//! component) to maximize TLP; HCCv1/v2 merge components because every
//! segment costs a round of synchronization on conventional hardware.

use crate::demote::PLACEHOLDER_SEG;
use crate::plan::SegmentPlan;
use helix_analysis::LoopDeps;
use helix_ir::cfg::NaturalLoop;
use helix_ir::{Inst, InstSite, Program, SegmentId, SharedTag, TrafficClass};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How aggressively to split shared data into segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// One segment per disjoint-data component (HCCv3).
    Aggressive,
    /// Merge components down to at most this many segments (HCCv1 uses 1,
    /// HCCv2 a small number): fewer synchronization rounds, longer
    /// segments.
    MaxSegments(usize),
}

/// Failure to form segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// A shared dependence endpoint is not a plain load/store (e.g. a
    /// `memcpy` touches shared data); such loops are not parallelized.
    UntaggableSite(InstSite),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::UntaggableSite(s) => {
                write!(f, "shared access at {s} is not a taggable load/store")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// Union-find over arbitrary ordered keys.
#[derive(Debug, Default)]
struct UnionFind {
    parent: BTreeMap<InstSite, InstSite>,
}

impl UnionFind {
    fn find(&mut self, x: InstSite) -> InstSite {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: InstSite, b: InstSite) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins, for determinism.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }
}

/// Assign final segment ids for one loop of a transformed program.
///
/// `deps` must come from re-analysis of the *transformed* loop (after
/// demotion). Rewrites the shared tags of every shared access in place
/// and returns the segment plans. `next_seg_id` provides globally unique
/// ids.
///
/// # Errors
///
/// Fails if a shared dependence endpoint cannot carry a tag.
pub fn assign_segments(
    program: &mut Program,
    lp: &NaturalLoop,
    deps: &LoopDeps,
    policy: SplitPolicy,
    next_seg_id: &mut u32,
) -> Result<Vec<SegmentPlan>, SegmentError> {
    // 1. Collect shared sites: dependence endpoints + demoted placeholders.
    let mut uf = UnionFind::default();
    let mut sites: BTreeSet<InstSite> = BTreeSet::new();
    for d in &deps.mem_deps {
        sites.insert(d.a);
        sites.insert(d.b);
        uf.union(d.a, d.b);
    }
    // Demoted placeholder tags (they alias through their slot, so the
    // dependence pass links them; still include isolated ones).
    for &b in &lp.blocks {
        for (idx, inst) in program.graph.block(b).insts.iter().enumerate() {
            if let Some(tag) = inst.shared_tag() {
                if tag.seg == PLACEHOLDER_SEG {
                    sites.insert(InstSite {
                        block: b,
                        index: idx,
                    });
                }
            }
        }
    }
    if sites.is_empty() {
        return Ok(Vec::new());
    }
    // Demoted sites of the same slot must share a segment even if the
    // dependence pass somehow missed a pair: link sites with identical
    // (region, offset) addresses.
    let mut by_slot: BTreeMap<(u32, i64), InstSite> = BTreeMap::new();
    for &site in &sites {
        let inst = &program.graph.block(site.block).insts[site.index];
        if let Inst::Load { addr, .. } | Inst::Store { addr, .. } = inst {
            if let helix_ir::AddrBase::Region(r) = addr.base {
                if addr.index.is_none() && inst.shared_tag().map(|t| t.seg) == Some(PLACEHOLDER_SEG)
                {
                    let key = (r.0, addr.offset);
                    if let Some(&other) = by_slot.get(&key) {
                        uf.union(other, site);
                    } else {
                        by_slot.insert(key, site);
                    }
                }
            }
        }
    }

    // 2. Verify taggability.
    for &site in &sites {
        let inst = &program.graph.block(site.block).insts[site.index];
        if !matches!(inst, Inst::Load { .. } | Inst::Store { .. }) {
            return Err(SegmentError::UntaggableSite(site));
        }
    }

    // 3. Components, ordered by their smallest site for determinism.
    let mut components: BTreeMap<InstSite, Vec<InstSite>> = BTreeMap::new();
    for &site in &sites {
        let root = uf.find(site);
        components.entry(root).or_default().push(site);
    }
    let mut comps: Vec<Vec<InstSite>> = components.into_values().collect();

    // 4. Splitting policy.
    if let SplitPolicy::MaxSegments(k) = policy {
        let k = k.max(1);
        if comps.len() > k {
            // Keep the k-1 largest; merge the rest into one.
            comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
            let tail: Vec<InstSite> = comps.split_off(k - 1).into_iter().flatten().collect();
            comps.push(tail);
            // Restore deterministic order by smallest site.
            comps.sort_by_key(|c| *c.iter().min().expect("nonempty component"));
        }
    }

    // 5. Assign ids and rewrite tags.
    let mut plans = Vec::new();
    for comp in comps {
        let id = SegmentId(*next_seg_id);
        *next_seg_id += 1;
        let mut classes = BTreeSet::new();
        for site in &comp {
            let inst = &mut program.graph.block_mut(site.block).insts[site.index];
            let class = match inst.shared_tag() {
                Some(tag) if tag.seg == PLACEHOLDER_SEG => TrafficClass::RegisterCarried,
                Some(tag) => tag.class,
                None => TrafficClass::MemoryCarried,
            };
            classes.insert(class);
            let new_tag = Some(SharedTag { seg: id, class });
            match inst {
                Inst::Load { shared, .. } | Inst::Store { shared, .. } => *shared = new_tag,
                _ => unreachable!("taggability verified"),
            }
        }
        plans.push(SegmentPlan {
            id,
            classes,
            access_sites: comp.len(),
        });
    }
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_analysis::{analyze_loop, DepConfig, PointsTo};
    use helix_ir::cfg::LoopForest;
    use helix_ir::{AddrExpr, BinOp, Program, ProgramBuilder, Ty};

    /// Two independent shared cells -> two segments under aggressive
    /// splitting, one under MaxSegments(1).
    fn two_cell_program() -> Program {
        let mut b = ProgramBuilder::new("two");
        let ra = b.region("cell_a", 64, Ty::I64);
        let rb = b.region("cell_b", 64, Ty::I64);
        b.counted_loop(0, 50, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region(ra, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, i);
            b.store(x, AddrExpr::region(ra, 0), Ty::I64);
            let y = b.reg();
            b.load(y, AddrExpr::region(rb, 0), Ty::I64);
            b.bin(y, BinOp::Xor, y, i);
            b.store(y, AddrExpr::region(rb, 0), Ty::I64);
        });
        b.finish()
    }

    fn form(p: &mut Program, policy: SplitPolicy) -> Vec<SegmentPlan> {
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let config = DepConfig::full();
        let pts = PointsTo::analyze(p, config.tier);
        let deps = analyze_loop(p, &lp, config, &pts);
        let mut next = 0;
        assign_segments(p, &lp, &deps, policy, &mut next).unwrap()
    }

    #[test]
    fn aggressive_splits_disjoint_data() {
        let mut p = two_cell_program();
        let plans = form(&mut p, SplitPolicy::Aggressive);
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|s| s.access_sites == 2));
        // Tags rewritten: no placeholder left; two distinct ids.
        let mut ids = BTreeSet::new();
        for (_, blk) in p.graph.iter() {
            for inst in &blk.insts {
                if let Some(tag) = inst.shared_tag() {
                    assert_ne!(tag.seg, PLACEHOLDER_SEG);
                    ids.insert(tag.seg);
                }
            }
        }
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn max_segments_merges() {
        let mut p = two_cell_program();
        let plans = form(&mut p, SplitPolicy::MaxSegments(1));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].access_sites, 4);
    }

    #[test]
    fn no_shared_data_no_segments() {
        let mut b = ProgramBuilder::new("none");
        let r = b.region("a", 8192, Ty::I64);
        b.counted_loop(0, 50, 1, |b, i| {
            let x = b.reg();
            b.load(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
            b.bin(x, BinOp::Add, x, 1i64);
            b.store(x, AddrExpr::region_indexed(r, i, 8, 0), Ty::I64);
        });
        let mut p = b.finish();
        let plans = form(&mut p, SplitPolicy::Aggressive);
        assert!(plans.is_empty());
    }

    #[test]
    fn segment_ids_globally_unique() {
        let mut p = two_cell_program();
        let forest = LoopForest::compute(&p.graph, p.graph.entry);
        let lp = forest.loops[0].lp.clone();
        let config = DepConfig::full();
        let pts = PointsTo::analyze(&p, config.tier);
        let deps = analyze_loop(&p, &lp, config, &pts);
        let mut next = 7;
        let plans =
            assign_segments(&mut p, &lp, &deps, SplitPolicy::Aggressive, &mut next).unwrap();
        assert_eq!(plans[0].id, SegmentId(7));
        assert_eq!(plans[1].id, SegmentId(8));
        assert_eq!(next, 9);
    }
}
