//! Per-node set-associative cache array with single-word lines.
//!
//! The line size is one machine word so independent shared values never
//! falsely share a line (paper §5.1). LRU replacement; an unbounded mode
//! backs the "Unbounded" point of the Fig. 11d sweep.

use crate::config::ArrayConfig;
use std::collections::BTreeMap;

/// Result of inserting a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// Inserted without displacing anything (or refreshed an existing
    /// line).
    Clean,
    /// A line was evicted; `dirty` says whether it needs write-back.
    Evicted {
        /// Address of the evicted line.
        addr: u64,
        /// Whether the evicted line was dirty.
        dirty: bool,
    },
}

/// The cache array of one ring node.
///
/// Bounded mode stores lines in one flat slot array — `assoc` entries
/// per set, tags biased by one so zero is the empty sentinel — because
/// every circulated word is inserted at every node, putting this on the
/// ring's per-delivery hot path.
#[derive(Debug, Clone)]
pub struct CacheArray {
    cfg: ArrayConfig,
    /// Bounded mode, structure-of-arrays: `tags[set * assoc + way]`
    /// is 0 for a free slot, otherwise the line address plus one. Tag
    /// scans touch one cache line per set; LRU clocks and dirty bits
    /// live in side arrays touched only on a hit or fill.
    tags: Vec<u64>,
    lrus: Vec<u64>,
    dirtys: Vec<bool>,
    n_sets: usize,
    /// Unbounded mode.
    unbounded: BTreeMap<u64, bool /* dirty */>,
    clock: u64,
    /// `log2(line)` when the line size is a power of two (the paper
    /// geometry always is), turning the per-access divisions on the
    /// ring's delivery path into shifts.
    line_shift: Option<u32>,
    /// `sets - 1` when the set count is a power of two.
    set_mask: Option<usize>,
}

impl CacheArray {
    /// An empty array with the given geometry.
    pub fn new(cfg: ArrayConfig) -> CacheArray {
        let n_sets = cfg.sets();
        let slots = if cfg.capacity.is_some() {
            n_sets * cfg.assoc
        } else {
            0
        };
        CacheArray {
            tags: vec![0; slots],
            lrus: vec![0; slots],
            dirtys: vec![false; slots],
            n_sets,
            unbounded: BTreeMap::new(),
            clock: 0,
            line_shift: cfg
                .line
                .is_power_of_two()
                .then(|| cfg.line.trailing_zeros()),
            set_mask: n_sets.is_power_of_two().then(|| n_sets - 1),
            cfg,
        }
    }

    /// Line number of a byte address (`addr / line`).
    fn line_num(&self, addr: u64) -> u64 {
        match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.cfg.line,
        }
    }

    fn line_addr(&self, addr: u64) -> u64 {
        match self.line_shift {
            Some(s) => addr >> s << s,
            None => addr / self.cfg.line * self.cfg.line,
        }
    }

    /// First slot index of the set holding `line_addr`.
    fn set_base(&self, line_addr: u64) -> usize {
        let ln = self.line_num(line_addr) as usize;
        let set = match self.set_mask {
            Some(mask) => ln & mask,
            None => ln % self.n_sets.max(1),
        };
        set * self.cfg.assoc
    }

    /// Whether the line holding `addr` is resident (refreshes LRU).
    pub fn probe(&mut self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        self.clock += 1;
        if self.cfg.capacity.is_none() {
            return self.unbounded.contains_key(&la);
        }
        let tag = la + 1;
        let base = self.set_base(la);
        match self.tags[base..base + self.cfg.assoc]
            .iter()
            .position(|&t| t == tag)
        {
            Some(way) => {
                self.lrus[base + way] = self.clock;
                true
            }
            None => false,
        }
    }

    /// Whether the line is resident, without touching LRU state.
    pub fn contains(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        if self.cfg.capacity.is_none() {
            return self.unbounded.contains_key(&la);
        }
        let base = self.set_base(la);
        self.tags[base..base + self.cfg.assoc].contains(&(la + 1))
    }

    /// Insert (or refresh) the line holding `addr`; `dirty` marks it as
    /// needing write-back on eviction. LRU clocks are unique, so
    /// filling the first free slot instead of appending changes nothing
    /// observable.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Insert {
        let la = self.line_addr(addr);
        self.clock += 1;
        if self.cfg.capacity.is_none() {
            let e = self.unbounded.entry(la).or_insert(false);
            *e |= dirty;
            return Insert::Clean;
        }
        let tag = la + 1;
        let base = self.set_base(la);
        // One tag-line pass: refresh on a match, else remember the
        // first free way.
        let mut free: Option<usize> = None;
        for (way, &t) in self.tags[base..base + self.cfg.assoc].iter().enumerate() {
            if t == tag {
                self.lrus[base + way] = self.clock;
                self.dirtys[base + way] |= dirty;
                return Insert::Clean;
            }
            if t == 0 && free.is_none() {
                free = Some(way);
            }
        }
        if let Some(way) = free {
            self.tags[base + way] = tag;
            self.lrus[base + way] = self.clock;
            self.dirtys[base + way] = dirty;
            return Insert::Clean;
        }
        // Evict LRU.
        let victim_way = self.lrus[base..base + self.cfg.assoc]
            .iter()
            .enumerate()
            .min_by_key(|(_, &lru)| lru)
            .map(|(i, _)| i)
            .expect("set is full, hence nonempty");
        let victim = Insert::Evicted {
            addr: self.tags[base + victim_way] - 1,
            dirty: self.dirtys[base + victim_way],
        };
        self.tags[base + victim_way] = tag;
        self.lrus[base + victim_way] = self.clock;
        self.dirtys[base + victim_way] = dirty;
        victim
    }

    /// Mark the resident line dirty (no-op when absent).
    pub fn mark_dirty(&mut self, addr: u64) {
        let la = self.line_addr(addr);
        if self.cfg.capacity.is_none() {
            if let Some(d) = self.unbounded.get_mut(&la) {
                *d = true;
            }
            return;
        }
        let base = self.set_base(la);
        if let Some(way) = self.tags[base..base + self.cfg.assoc]
            .iter()
            .position(|&t| t == la + 1)
        {
            self.dirtys[base + way] = true;
        }
    }

    /// Number of dirty resident lines.
    pub fn dirty_count(&self) -> usize {
        if self.cfg.capacity.is_none() {
            return self.unbounded.values().filter(|d| **d).count();
        }
        self.tags
            .iter()
            .zip(&self.dirtys)
            .filter(|(&t, &d)| t != 0 && d)
            .count()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        if self.cfg.capacity.is_none() {
            return self.unbounded.len();
        }
        self.tags.iter().filter(|&&t| t != 0).count()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (the end-of-loop flush, after write-backs are
    /// accounted for).
    pub fn clear(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = 0);
        self.unbounded.clear();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 4 lines total: 2 sets x 2 ways, 8-byte lines.
        CacheArray::new(ArrayConfig {
            capacity: Some(32),
            assoc: 2,
            line: 8,
        })
    }

    #[test]
    fn insert_then_probe_hits() {
        let mut a = tiny();
        assert!(!a.probe(0x100));
        a.insert(0x100, false);
        assert!(a.probe(0x100));
        assert!(a.contains(0x104), "same word line");
        assert!(!a.contains(0x108), "next word is a different line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut a = tiny();
        // Set index = (addr/8) % 2: keep everything in set 0.
        a.insert(0x00, false); // line 0
        a.insert(0x10, false); // line 2 -> set 0
        a.probe(0x00); // refresh line 0
        match a.insert(0x20, true) {
            Insert::Evicted { addr, dirty } => {
                assert_eq!(addr, 0x10, "LRU victim");
                assert!(!dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(a.contains(0x00));
        assert!(a.contains(0x20));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut a = tiny();
        a.insert(0x00, true);
        a.insert(0x10, false);
        match a.insert(0x20, false) {
            Insert::Evicted { addr, dirty } => {
                assert_eq!(addr, 0x00);
                assert!(dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn mark_dirty_and_count() {
        let mut a = tiny();
        a.insert(0x00, false);
        assert_eq!(a.dirty_count(), 0);
        a.mark_dirty(0x00);
        assert_eq!(a.dirty_count(), 1);
        a.clear();
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut a = CacheArray::new(ArrayConfig {
            capacity: None,
            assoc: 8,
            line: 8,
        });
        for i in 0..10_000u64 {
            assert_eq!(a.insert(i * 8, i % 2 == 0), Insert::Clean);
        }
        assert_eq!(a.len(), 10_000);
        assert!(a.contains(0));
        assert!(a.contains(9_999 * 8));
    }

    #[test]
    fn wider_lines_share_residency() {
        let mut a = CacheArray::new(ArrayConfig {
            capacity: Some(256),
            assoc: 2,
            line: 64,
        });
        a.insert(0x40, false);
        assert!(a.contains(0x78), "same 64B line");
        assert!(!a.contains(0x80));
    }
}
