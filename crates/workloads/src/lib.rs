//! # helix-workloads
//!
//! Synthetic stand-ins for the ten SPEC CPU2000 C benchmarks the paper
//! evaluates (§6.1): 6 integer (CINT2000) + 4 floating-point (CFP2000)
//! programs expressed in the `helix-ir` loop IR.
//!
//! SPEC sources and inputs cannot ship with this repository, so each
//! program is engineered to exercise the same code paths with the same
//! published *shape*: iteration-length distributions (Fig. 4a),
//! multi-hop/multi-consumer sharing (Fig. 4b/c), per-generation
//! parallel-loop coverage (Table 1), and the per-benchmark overhead mix
//! (Fig. 12). The published numbers are carried along as
//! [`PaperRow`] constants so every experiment can print
//! paper-vs-measured side by side.
//!
//! Workloads are *data*: a [`ScenarioSpec`] (TOML under `scenarios/`)
//! describes regions, a phase pipeline — or, for multi-nest scenarios,
//! an ordered list of [`NestSpec`]s with serial glue and carried state
//! — and [`generate`] lowers it deterministically to a program. See
//! `docs/SCENARIOS.md` for the full field reference.
//!
//! # Examples
//!
//! ```
//! use helix_workloads::{builtin_spec, workload_from_spec, Scale};
//!
//! // Multi-nest scenarios record each nest's block boundary, which is
//! // how campaign reports attribute parallelized loops to nests.
//! let spec = builtin_spec("950.twonest").unwrap();
//! let w = workload_from_spec(&spec, Scale::Test)?;
//! assert_eq!(w.nests.len(), 2);
//! assert!(w.nests[0].end_block <= w.nests[1].first_block);
//! # Ok::<(), helix_workloads::SpecError>(())
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod cfp;
pub mod cint;
pub mod common;
pub mod gen;
pub mod genspec;
pub mod spec;
pub mod spec_builtin;
pub mod toml;

pub use campaign::{
    campaign_from_inline, CampaignExperiment, CampaignGrid, CampaignSpec, NestOverride,
    ResiliencePolicy,
};
pub use common::Scale;
pub use gen::{generate, generate_nest, generate_prefix, generate_with_nests, NestBoundary};
pub use genspec::{generated_spec, SpecGen};
pub use spec::{NestSpec, ScenarioSpec, SpecError};
pub use spec_builtin::{builtin_spec, builtin_specs};

use helix_ir::Program;
use serde::{Deserialize, Serialize};

/// Benchmark family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kind {
    /// SPEC CINT2000 (non-numerical).
    Int,
    /// SPEC CFP2000 (numerical).
    Fp,
}

impl Kind {
    /// The stable lowercase spelling used in scenario TOML, scenario
    /// reports, and campaign reports.
    pub fn render(self) -> &'static str {
        match self {
            Kind::Int => "int",
            Kind::Fp => "fp",
        }
    }
}

/// Published paper numbers for one benchmark, used for side-by-side
/// reporting (never fed back into the system under test).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRow {
    /// HELIX-RC speedup on 16 in-order cores (Fig. 7 / Fig. 12).
    pub helix_speedup: f64,
    /// Parallel-loop coverage per compiler `[HCCv1, HCCv2, HELIX-RC]`
    /// (Table 1).
    pub coverage: [f64; 3],
    /// SimPoint phases (Table 1).
    pub phases: u32,
    /// Fig. 12 overhead fractions, in `helix_sim` order: additional
    /// instructions, wait/signal, memory, iteration imbalance, low trip
    /// count, communication, dependence waiting.
    pub overheads: [f64; 7],
}

impl PaperRow {
    /// Placeholder for scenarios the paper never measured (novel
    /// workloads opened by the declarative subsystem): all zeros, so
    /// reports render `-` instead of a bogus reference number.
    pub const UNPUBLISHED: PaperRow = PaperRow {
        helix_speedup: 0.0,
        coverage: [0.0, 0.0, 0.0],
        phases: 0,
        overheads: [0.0; 7],
    };
}

/// One benchmark: its program plus published reference numbers.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Scenario name (SPEC-style for the stand-ins, e.g. `"164.gzip"`).
    pub name: String,
    /// Family.
    pub kind: Kind,
    /// The program.
    pub program: Program,
    /// Published numbers ([`PaperRow::UNPUBLISHED`] for novel
    /// scenarios).
    pub paper: PaperRow,
    /// Block-id boundary of every loop nest for multi-nest scenarios
    /// (empty for single-pipeline programs). Consumers map parallelized
    /// loop plans onto nests through these ranges to derive per-nest
    /// coverage and speedup.
    pub nests: Vec<NestBoundary>,
}

/// The six CINT2000 stand-ins, in the paper's reporting order.
const CINT_NAMES: [&str; 6] = [
    "164.gzip",
    "175.vpr",
    "197.parser",
    "300.twolf",
    "181.mcf",
    "256.bzip2",
];

/// The four CFP2000 stand-ins, in the paper's reporting order.
const CFP_NAMES: [&str; 4] = ["183.equake", "179.art", "188.ammp", "177.mesa"];

/// Published per-benchmark numbers (Table 1, Fig. 7, Fig. 12), keyed by
/// SPEC name. Carried separately from the programs so spec-driven
/// workloads pick up their reference rows by name.
// The published overhead fractions are verbatim paper constants; one of
// them happens to sit near 1/π, which is a coincidence, not a math bug.
#[allow(clippy::approx_constant)]
const PAPER_ROWS: [(&str, PaperRow); 10] = [
    (
        "164.gzip",
        PaperRow {
            helix_speedup: 3.0,
            coverage: [0.423, 0.423, 0.982],
            phases: 12,
            overheads: [0.408, 0.081, 0.096, 0.045, 0.0, 0.181, 0.188],
        },
    ),
    (
        "175.vpr",
        PaperRow {
            helix_speedup: 6.1,
            coverage: [0.551, 0.551, 0.99],
            phases: 28,
            overheads: [0.119, 0.004, 0.742, 0.124, 0.0, 0.005, 0.005],
        },
    ),
    (
        "197.parser",
        PaperRow {
            helix_speedup: 7.3,
            coverage: [0.602, 0.602, 0.987],
            phases: 19,
            overheads: [0.313, 0.243, 0.153, 0.05, 0.003, 0.116, 0.122],
        },
    ),
    (
        "300.twolf",
        PaperRow {
            helix_speedup: 7.6,
            coverage: [0.624, 0.624, 0.99],
            phases: 18,
            overheads: [0.001, 0.002, 0.418, 0.014, 0.318, 0.0, 0.246],
        },
    ),
    (
        "181.mcf",
        PaperRow {
            helix_speedup: 8.7,
            coverage: [0.653, 0.653, 0.99],
            phases: 19,
            overheads: [0.377, 0.104, 0.055, 0.012, 0.032, 0.209, 0.212],
        },
    ),
    (
        "256.bzip2",
        PaperRow {
            helix_speedup: 12.0,
            coverage: [0.721, 0.723, 0.99],
            phases: 23,
            overheads: [0.034, 0.034, 0.516, 0.001, 0.011, 0.197, 0.207],
        },
    ),
    (
        "183.equake",
        PaperRow {
            helix_speedup: 10.1,
            coverage: [0.771, 0.99, 0.99],
            phases: 7,
            overheads: [0.002, 0.0, 0.091, 0.015, 0.877, 0.0, 0.015],
        },
    ),
    (
        "179.art",
        PaperRow {
            helix_speedup: 10.5,
            coverage: [0.841, 0.99, 0.99],
            phases: 11,
            overheads: [0.002, 0.0, 0.477, 0.248, 0.161, 0.0, 0.113],
        },
    ),
    (
        "188.ammp",
        PaperRow {
            helix_speedup: 12.5,
            coverage: [0.602, 0.99, 0.99],
            phases: 23,
            overheads: [0.641, 0.08, 0.063, 0.074, 0.089, 0.022, 0.031],
        },
    ),
    (
        "177.mesa",
        PaperRow {
            helix_speedup: 15.1,
            coverage: [0.643, 0.99, 0.99],
            phases: 8,
            overheads: [0.293, 0.009, 0.037, 0.584, 0.073, 0.0, 0.003],
        },
    ),
];

/// The published reference numbers for a benchmark, if the paper
/// measured it.
pub fn paper_row(name: &str) -> Option<PaperRow> {
    PAPER_ROWS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, row)| *row)
}

/// Build a [`Workload`] from a declarative scenario spec: generate the
/// program at `scale` and attach the published reference numbers when
/// the scenario is a SPEC stand-in ([`PaperRow::UNPUBLISHED`]
/// otherwise). This is how campaign runs and spec-driven figures turn
/// `scenarios/*.toml` into experiment inputs.
pub fn workload_from_spec(spec: &ScenarioSpec, scale: Scale) -> Result<Workload, SpecError> {
    let (program, nests) = generate_with_nests(spec, scale)?;
    Ok(Workload {
        name: spec.name.clone(),
        kind: spec.kind,
        program,
        paper: paper_row(&spec.name).unwrap_or(PaperRow::UNPUBLISHED),
        nests,
    })
}

fn spec_suite(names: &[&str], scale: Scale) -> Vec<Workload> {
    names
        .iter()
        .map(|name| {
            let spec = builtin_spec(name).unwrap_or_else(|| panic!("no built-in spec for {name}"));
            workload_from_spec(&spec, scale).unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect()
}

/// The six CINT2000 stand-ins.
pub fn cint_suite(scale: Scale) -> Vec<Workload> {
    spec_suite(&CINT_NAMES, scale)
}

/// The four CFP2000 stand-ins.
pub fn cfp_suite(scale: Scale) -> Vec<Workload> {
    spec_suite(&CFP_NAMES, scale)
}

/// All ten benchmarks, CINT first (the paper's reporting order).
pub fn suite(scale: Scale) -> Vec<Workload> {
    let mut v = cint_suite(scale);
    v.extend(cfp_suite(scale));
    v
}

/// Look up a benchmark by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.name == name)
}

/// Geometric mean helper used throughout the evaluation.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_benchmarks() {
        let s = suite(Scale::Test);
        assert_eq!(s.len(), 10);
        assert_eq!(s.iter().filter(|w| w.kind == Kind::Int).count(), 6);
        assert_eq!(s.iter().filter(|w| w.kind == Kind::Fp).count(), 4);
        for w in &s {
            assert!(w.program.validate().is_ok(), "{}", w.name);
            let osum: f64 = w.paper.overheads.iter().sum();
            assert!((osum - 1.0).abs() < 0.02, "{} overheads {osum}", w.name);
        }
    }

    #[test]
    fn paper_int_geomean_matches_headline() {
        let g = geomean(
            cint_suite(Scale::Test)
                .iter()
                .map(|w| w.paper.helix_speedup),
        );
        assert!(
            (g - 6.85).abs() < 0.1,
            "published INT geomean ~6.85, got {g}"
        );
    }

    #[test]
    fn paper_fp_geomean_matches_headline() {
        let g = geomean(cfp_suite(Scale::Test).iter().map(|w| w.paper.helix_speedup));
        assert!((g - 11.9).abs() < 0.2, "published FP geomean ~12, got {g}");
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("164.gzip", Scale::Test).is_some());
        assert!(by_name("999.nope", Scale::Test).is_none());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 16.0]) - 8.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    /// The co-design premise: every workload's hot loops are selected by
    /// HCCv3 with near-total coverage, while HCCv1 covers only the
    /// coarse phase.
    #[test]
    fn v3_selects_more_than_v1() {
        for w in suite(Scale::Test) {
            let v3 = helix_hcc::compile(&w.program, &helix_hcc::HccConfig::v3(16)).unwrap();
            assert!(
                !v3.plans.is_empty(),
                "{}: HELIX-RC must parallelize something",
                w.name
            );
            let v1 = helix_hcc::compile(&w.program, &helix_hcc::HccConfig::v1(16)).unwrap();
            assert!(
                v3.stats.coverage > v1.stats.coverage - 1e-9,
                "{}: v3 coverage {} < v1 {}",
                w.name,
                v3.stats.coverage,
                v1.stats.coverage
            );
        }
    }
}
