//! Root crate of the HELIX-RC reproduction workspace.
//!
//! This package exists to own the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the implementation
//! lives in the `crates/` members. See `README.md` for the map.
