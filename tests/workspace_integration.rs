//! Workspace-wide integration tests: the full pipeline over the
//! synthetic SPEC suite. Every workload must compile under all three
//! compiler generations, execute in parallel with bit-identical results,
//! and uphold the paper's code properties at runtime.

use helix_rc::hcc::{compile, HccConfig};
use helix_rc::ir::interp::{run_to_completion, Env};
use helix_rc::sim::{simulate, MachineConfig};
use helix_rc::workloads::{suite, Scale};

const FUEL: u64 = 1 << 26;

/// Every workload, compiled with HCCv3 and run on the HELIX-RC machine,
/// produces exactly the sequential result, with no race-detector or
/// protocol findings.
#[test]
fn whole_suite_parallel_equivalence() {
    for w in suite(Scale::Test) {
        let compiled = compile(&w.program, &HccConfig::v3(16)).expect(&w.name);
        assert!(
            !compiled.plans.is_empty(),
            "{}: nothing parallelized",
            w.name
        );

        let mut env = Env::for_program(&compiled.program);
        run_to_completion(&compiled.program, &mut env).expect(&w.name);
        let expect = env.mem.digest();

        let rep = simulate(&compiled, &MachineConfig::helix_rc(16), FUEL).expect(&w.name);
        assert_eq!(rep.race_violations, vec![], "{}", w.name);
        assert_eq!(rep.protocol_errors, Vec::<String>::new(), "{}", w.name);
        assert_eq!(rep.mem_digest, expect, "{}: wrong parallel result", w.name);
        assert!(rep.iterations > 0, "{}", w.name);
    }
}

/// All three compiler generations preserve sequential semantics on every
/// workload (the transformed program, interpreted, matches the original
/// in its original regions).
#[test]
fn all_generations_preserve_semantics() {
    for w in suite(Scale::Test) {
        let mut env_ref = Env::for_program(&w.program);
        run_to_completion(&w.program, &mut env_ref).expect(&w.name);
        for cfg in [HccConfig::v1(16), HccConfig::v2(16), HccConfig::v3(16)] {
            let compiled = compile(&w.program, &cfg).expect(&w.name);
            let mut env = Env::for_program(&compiled.program);
            run_to_completion(&compiled.program, &mut env).expect(&w.name);
            for (i, _) in w.program.regions.iter().enumerate() {
                let a = env_ref.mem.region(helix_rc::ir::RegionId(i as u32));
                let b = env.mem.region(helix_rc::ir::RegionId(i as u32));
                assert_eq!(a, b, "{} region {i} under {}", w.name, compiled.version);
            }
        }
    }
}

/// Table 1 shape: HCCv3 coverage exceeds HCCv1's on every integer
/// benchmark, and reaches near-total coverage.
#[test]
fn coverage_ordering_matches_table1() {
    for w in helix_rc::workloads::cint_suite(Scale::Test) {
        let v1 = compile(&w.program, &HccConfig::v1(16)).expect(&w.name);
        let v3 = compile(&w.program, &HccConfig::v3(16)).expect(&w.name);
        assert!(
            v3.stats.coverage > 0.85,
            "{}: HELIX-RC coverage only {:.2}",
            w.name,
            v3.stats.coverage
        );
        assert!(
            v3.stats.coverage > v1.stats.coverage + 0.1,
            "{}: v3 {:.2} vs v1 {:.2} — the small hot loops are the point",
            w.name,
            v3.stats.coverage,
            v1.stats.coverage
        );
    }
}

/// The paper's §4 code properties, checked statically on compiled
/// output: every tagged access belongs to exactly one segment, and
/// segment ids are unique per loop.
#[test]
fn compiled_code_properties() {
    for w in suite(Scale::Test) {
        let compiled = compile(&w.program, &HccConfig::v3(16)).expect(&w.name);
        for plan in &compiled.plans {
            // Unique segment ids.
            let mut ids: Vec<_> = plan.segments.iter().map(|s| s.id).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), plan.segments.len(), "{}", w.name);
            // Iteration entry jumps to the header.
            let entry = compiled.program.graph.block(plan.iteration_entry);
            assert_eq!(
                entry.term,
                helix_rc::ir::Terminator::Jump(plan.header),
                "{}",
                w.name
            );
        }
        // Static wait/signal counts are consistent with plans.
        if compiled.stats.segments > 0 {
            assert!(
                compiled.stats.sync_insts >= 2 * compiled.stats.segments,
                "{}",
                w.name
            );
        }
    }
}

/// Determinism: repeated parallel simulations are cycle-identical.
#[test]
fn simulation_is_deterministic() {
    let w = helix_rc::workloads::by_name("181.mcf", Scale::Test).unwrap();
    let compiled = compile(&w.program, &HccConfig::v3(8)).unwrap();
    let a = simulate(&compiled, &MachineConfig::helix_rc(8), FUEL).unwrap();
    let b = simulate(&compiled, &MachineConfig::helix_rc(8), FUEL).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem_digest, b.mem_digest);
}
