//! Workspace tests for the declarative scenario subsystem: the
//! committed `scenarios/*.toml` files must stay parseable, in sync with
//! the built-in specs, and — for the SPEC stand-ins — pinned to the
//! hand-coded constructors' exact cycle counts.

mod common;

use common::committed_specs;
use helix_rc::hcc::{compile, HccConfig};
use helix_rc::scenario::{run_scenario, RunOverrides};
use helix_rc::sim::{simulate, simulate_sequential, MachineConfig};
use helix_rc::workloads::{builtin_spec, by_name, generate, Scale};

const FUEL: u64 = 1 << 27;

/// Every committed file parses, matches its built-in twin exactly, and
/// the directory covers the whole suite: ten SPEC stand-ins, at least
/// five novel scenarios, and at least three multi-nest scenarios.
#[test]
fn committed_scenarios_match_builtins_and_cover_the_suite() {
    let specs = committed_specs();
    assert!(
        specs.len() >= 20,
        "expected >= 20 committed scenarios, found {}",
        specs.len()
    );
    let mut spec_standins = 0;
    let mut novel = 0;
    let mut multi_nest = 0;
    for (path, spec) in &specs {
        let builtin = builtin_spec(&spec.name)
            .unwrap_or_else(|| panic!("{}: no built-in spec named {}", path.display(), spec.name));
        assert_eq!(
            spec,
            &builtin,
            "{}: committed file drifted from the built-in spec (run `helix export scenarios/`)",
            path.display()
        );
        if by_name(&spec.name, Scale::Test).is_some() {
            spec_standins += 1;
        } else {
            novel += 1;
        }
        if spec.nests.len() >= 2 {
            multi_nest += 1;
        }
    }
    assert_eq!(
        spec_standins, 10,
        "all ten SPEC stand-ins must be committed"
    );
    assert!(novel >= 5, "need >= 5 novel scenarios, found {novel}");
    assert!(
        multi_nest >= 3,
        "need >= 3 multi-nest scenarios, found {multi_nest}"
    );
}

/// The pin the whole subsystem hangs on: spec-generated SPEC stand-ins
/// simulate to the *same cycle counts* as the hand-coded constructors,
/// sequentially and on both parallel machines.
#[test]
fn spec_generated_standins_match_hand_coded_cycle_counts() {
    for name in ["175.vpr", "181.mcf", "256.bzip2"] {
        let (_, spec) = committed_specs()
            .into_iter()
            .find(|(_, s)| s.name == name)
            .unwrap_or_else(|| panic!("{name} not committed"));
        let generated = generate(&spec, Scale::Test).expect(name);
        let hand = by_name(name, Scale::Test).expect(name).program;
        assert_eq!(generated, hand, "{name}: programs diverge");

        let seq_gen = simulate_sequential(&generated, &MachineConfig::conventional(16), FUEL)
            .expect(name)
            .cycles;
        let seq_hand = simulate_sequential(&hand, &MachineConfig::conventional(16), FUEL)
            .expect(name)
            .cycles;
        assert_eq!(seq_gen, seq_hand, "{name}: sequential cycles diverge");

        let compiled_gen = compile(&generated, &HccConfig::v3(16)).expect(name);
        let compiled_hand = compile(&hand, &HccConfig::v3(16)).expect(name);
        for cfg in [MachineConfig::conventional(16), MachineConfig::helix_rc(16)] {
            let par_gen = simulate(&compiled_gen, &cfg, FUEL).expect(name).cycles;
            let par_hand = simulate(&compiled_hand, &cfg, FUEL).expect(name).cycles;
            assert_eq!(par_gen, par_hand, "{name}: parallel cycles diverge");
        }
    }
}

/// Every committed scenario runs end-to-end (generate -> compile ->
/// simulate on all of its machines) without races or protocol errors.
#[test]
fn every_committed_scenario_runs_end_to_end() {
    for (path, spec) in committed_specs() {
        let report = run_scenario(
            &spec,
            Scale::Test,
            RunOverrides {
                cores: Some(8),
                fuel: None,
                ..RunOverrides::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(report.runs.len(), spec.run.machines.len(), "{}", spec.name);
        assert!(report.plans >= 1, "{}: nothing parallelized", spec.name);
        let helix = report
            .runs
            .iter()
            .find(|r| r.config.starts_with("helix-rc"))
            .unwrap_or_else(|| panic!("{}: no helix-rc run", spec.name));
        let speedup = helix
            .speedup_vs_sequential
            .expect("sequential baseline first");
        assert!(
            speedup > 0.5,
            "{}: helix-rc catastrophically slow ({speedup:.2}x)",
            spec.name
        );
    }
}

/// Same spec file + seed twice => identical report fingerprints
/// (bit-identical programs, cycles, and memory digests).
#[test]
fn scenario_reports_are_deterministic() {
    for name in ["910.bursty", "900.chase"] {
        let (_, spec) = committed_specs()
            .into_iter()
            .find(|(_, s)| s.name == name)
            .unwrap_or_else(|| panic!("{name} not committed"));
        let overrides = RunOverrides {
            cores: Some(4),
            fuel: None,
            ..RunOverrides::default()
        };
        let a = run_scenario(&spec, Scale::Test, overrides).expect(name);
        let b = run_scenario(&spec, Scale::Test, overrides).expect(name);
        assert_eq!(a.fingerprint(), b.fingerprint(), "{name}");
    }
}
