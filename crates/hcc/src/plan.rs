//! Parallelization plans: the contract between compiler and simulator.
//!
//! A [`LoopPlan`] records everything the runtime needs to execute a
//! parallelized loop: the loop's shape (counter, step, bound), the
//! sequential segments, the variables each core re-computes (inductions)
//! or privatizes (reductions), and the live-out registers whose final
//! values must be resolved at the loop barrier.

use helix_ir::{BinOp, BlockId, Operand, Reg, RegionId, SegmentId, TrafficClass, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A sequential segment of a parallelized loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentPlan {
    /// Segment identifier carried by `wait`/`signal` and shared tags.
    pub id: SegmentId,
    /// Traffic classes present in the segment (register-carried demoted
    /// scalars and/or memory-carried structures).
    pub classes: BTreeSet<TrafficClass>,
    /// Static count of tagged shared accesses in the segment.
    pub access_sites: usize,
}

/// A first- or second-order induction variable re-computed per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InductionPlan {
    /// The register holding the variable.
    pub reg: Reg,
    /// Fresh register holding the loop-entry value (runtime-initialized).
    pub init_copy: Reg,
    /// First-order step per iteration.
    pub step: i64,
}

/// A reduction privatized per core and combined at the loop barrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionPlan {
    /// The register accumulating the reduction.
    pub reg: Reg,
    /// Combining operation.
    pub op: BinOp,
    /// Identity element cores (other than core 0) start from.
    pub identity: Value,
}

/// A second-order induction (`r += s`, `s += dd`), re-computed from the
/// closed form `r₀ + k·s₀ + dd·k(k−1)/2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poly2Plan {
    /// The register holding the variable.
    pub reg: Reg,
    /// Fresh register holding the loop-entry value.
    pub init_copy: Reg,
    /// The first-order register it accumulates (must have an
    /// [`InductionPlan`]).
    pub step_reg: Reg,
    /// Second difference (`step_reg`'s per-iteration increment).
    pub step_step: i64,
}

/// How the runtime resolves a live-out register's final value at the
/// loop barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiveOutResolve {
    /// Closed-form induction value at iteration `trip`.
    InductionFinal,
    /// Combine every core's private accumulator.
    ReductionCombine,
    /// Take the value from the core that ran the last iteration that
    /// defined the register (categories iii/iv).
    LastWriter,
}

/// One live-out register and its resolution strategy. Demoted registers
/// are absent: compiler-inserted loads on the loop's exit edge read their
/// slots back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveOutPlan {
    /// The register.
    pub reg: Reg,
    /// Resolution strategy.
    pub resolve: LiveOutResolve,
}

/// Returns the identity element of a reduction operation, or `None` if
/// the operation cannot be privatized.
pub fn reduction_identity(op: BinOp) -> Option<Value> {
    Some(match op {
        BinOp::Add => Value::Int(0),
        BinOp::FAdd => Value::Float(0.0),
        BinOp::Mul => Value::Int(1),
        BinOp::FMul => Value::Float(1.0),
        BinOp::MinI => Value::Int(i64::MAX),
        BinOp::MaxI => Value::Int(i64::MIN),
        BinOp::FMin => Value::Float(f64::INFINITY),
        BinOp::FMax => Value::Float(f64::NEG_INFINITY),
        BinOp::And => Value::Int(-1),
        BinOp::Or | BinOp::Xor => Value::Int(0),
        _ => return None,
    })
}

/// Everything the runtime needs to run one parallelized loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopPlan {
    /// Human-readable name (e.g. `"hot_loop_0"`).
    pub name: String,
    /// Header block of the loop in the transformed program.
    pub header: BlockId,
    /// All blocks of the loop in the transformed program (including
    /// compiler-inserted split blocks).
    pub blocks: BTreeSet<BlockId>,
    /// Block each iteration starts at (the re-computation prologue, which
    /// jumps to the header).
    pub iteration_entry: BlockId,
    /// Register the runtime sets to the iteration index before starting
    /// an iteration.
    pub iter_reg: Reg,
    /// The canonical loop counter.
    pub counter: Reg,
    /// Counter step per iteration.
    pub step: i64,
    /// Loop bound operand (evaluated at loop entry to derive the trip
    /// count).
    pub bound: Operand,
    /// Sequential segments.
    pub segments: Vec<SegmentPlan>,
    /// Induction variables re-computed each iteration.
    pub inductions: Vec<InductionPlan>,
    /// Second-order inductions re-computed each iteration.
    pub poly2: Vec<Poly2Plan>,
    /// Reductions privatized per core.
    pub reductions: Vec<ReductionPlan>,
    /// Live-out registers the runtime resolves at the loop barrier.
    pub liveouts: Vec<LiveOutPlan>,
    /// Block the orchestrating core resumes at after the parallel loop
    /// (holds compiler-inserted loads of demoted slots, then jumps to the
    /// original exit).
    pub exit_resume: BlockId,
    /// Region holding the demoted shared scalars.
    pub shared_region: Option<RegionId>,
    /// Compiler's estimated speedup (from the selection model).
    pub est_speedup: f64,
    /// Fraction of sequential execution time this loop covers (from the
    /// training profile).
    pub coverage: f64,
    /// Mean dynamic instructions per iteration (training profile).
    pub insts_per_iter: f64,
}

impl LoopPlan {
    /// Trip count for an invocation given the runtime values of the
    /// counter (at entry) and the bound.
    pub fn trip_count(&self, counter_entry: i64, bound: i64) -> u64 {
        if self.step <= 0 {
            return 0;
        }
        let span = bound - counter_entry;
        if span <= 0 {
            0
        } else {
            ((span + self.step - 1) / self.step) as u64
        }
    }

    /// Number of sequential segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// Compile-time statistics for reporting (Table 1, §6.2 text numbers).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompileStats {
    /// Fraction of profiled execution covered by selected loops.
    pub coverage: f64,
    /// Total loops considered.
    pub candidates: usize,
    /// Loops selected for parallelization.
    pub selected: usize,
    /// Total sequential segments across selected loops.
    pub segments: usize,
    /// Static `wait`/`signal` instructions inserted.
    pub sync_insts: usize,
    /// Static instructions added by parallelization (loads/stores of
    /// demoted scalars, re-computation code), excluding `wait`/`signal`.
    pub added_insts: usize,
    /// Mean static instructions per sequential segment region.
    pub mean_segment_size: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_arithmetic() {
        let plan = LoopPlan {
            name: "t".into(),
            header: BlockId(1),
            blocks: BTreeSet::new(),
            iteration_entry: BlockId(9),
            iter_reg: Reg(10),
            counter: Reg(0),
            step: 2,
            bound: Operand::imm(10),
            segments: vec![],
            inductions: vec![],
            poly2: vec![],
            reductions: vec![],
            liveouts: vec![],
            exit_resume: BlockId(2),
            shared_region: None,
            est_speedup: 1.0,
            coverage: 0.5,
            insts_per_iter: 10.0,
        };
        assert_eq!(plan.trip_count(0, 10), 5);
        assert_eq!(plan.trip_count(1, 10), 5); // 1,3,5,7,9
        assert_eq!(plan.trip_count(10, 10), 0);
        assert_eq!(plan.trip_count(11, 10), 0);
    }

    #[test]
    fn reduction_identities() {
        assert_eq!(reduction_identity(BinOp::Add), Some(Value::Int(0)));
        assert_eq!(reduction_identity(BinOp::MinI), Some(Value::Int(i64::MAX)));
        assert_eq!(reduction_identity(BinOp::MaxI), Some(Value::Int(i64::MIN)));
        assert_eq!(reduction_identity(BinOp::Mul), Some(Value::Int(1)));
        assert_eq!(reduction_identity(BinOp::Sub), None);
        match reduction_identity(BinOp::FMin) {
            Some(Value::Float(f)) => assert!(f.is_infinite() && f > 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
