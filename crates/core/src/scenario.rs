//! Scenario execution: run a declarative [`ScenarioSpec`] end-to-end
//! (generate → compile → simulate) and produce a JSON report whose
//! field vocabulary matches `BENCH_sim.json` (`name`, `config`,
//! `cycles`, `cycles_per_sec`), so scenario reports and the perf
//! snapshot can be consumed by the same tooling.

use crate::experiment::{check, ExpError};
use helix_hcc::{compile, CompiledProgram, HccConfig};
use helix_sim::{simulate, simulate_sequential, Bucket, MachineConfig, RunReport};
use helix_workloads::spec::{CompilerGen, MachineKind};
use helix_workloads::{generate, generate_nest, generate_prefix, Scale, ScenarioSpec};
use std::fmt::Write as _;
use std::time::Instant;

/// Command-line overrides applied on top of a spec's `[run]` section.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOverrides {
    /// Override the core count.
    pub cores: Option<usize>,
    /// Override the cycle budget.
    pub fuel: Option<u64>,
    /// Attach the per-stall-cause cycle breakdown (the Fig. 12 buckets)
    /// to every run row. Off by default: the breakdown is diagnostic
    /// output, and rows stay lean unless asked for.
    pub attribution: bool,
}

/// One simulated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRow {
    /// Configuration label, e.g. `helix-rc-16`.
    pub config: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions.
    pub dyn_insts: u64,
    /// Digest of final memory contents.
    pub mem_digest: u64,
    /// Wall-clock seconds for the simulation.
    pub wall_secs: f64,
    /// Speedup versus the sequential baseline at the same core count,
    /// when one was simulated.
    pub speedup_vs_sequential: Option<f64>,
    /// Per-stall-cause cycle totals `(bucket label, cycles)` in
    /// [`Bucket::ALL`] order — present only when the run asked for
    /// attribution (`--attribution`). Deterministic (cycle-derived, no
    /// wall clock), so its presence never perturbs report identity
    /// comparisons beyond the requested extra field.
    pub attribution: Option<Vec<(String, u64)>>,
}

impl RunRow {
    /// Simulated cycles per wall-second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs.max(1e-12)
    }
}

/// Per-nest measurements of a multi-nest scenario.
///
/// Weights are *in-context*: successive prefix programs (nests `0..k`,
/// with and without the next glue stretch) are simulated sequentially
/// and their cycle counts differenced, so each nest's fraction reflects
/// exactly what it costs inside the composed program, warm caches and
/// carried state included. Speedup and coverage come from the nest
/// simulated and compiled in *isolation* (its phases only), which is
/// the per-nest parallelization measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct NestRow {
    /// Nest name from the spec.
    pub name: String,
    /// In-context fraction of the composed program's sequential cycles
    /// spent in this nest's phases.
    pub weight: f64,
    /// In-context fraction spent in the serial glue preceding this nest
    /// (never parallelizable; `weight + glue_weight` summed over nests
    /// accounts for the whole program).
    pub glue_weight: f64,
    /// Compiler coverage achieved inside the isolated nest.
    pub coverage: f64,
    /// Parallelized loops inside the nest.
    pub plans: usize,
    /// Sequential cycles of the isolated nest.
    pub seq_cycles: u64,
    /// HELIX-RC cycles of the isolated nest.
    pub helix_cycles: u64,
    /// Per-nest HELIX-RC speedup (`seq_cycles / helix_cycles`).
    pub speedup: f64,
}

/// Full per-scenario report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// `"int"` or `"fp"`.
    pub kind: String,
    /// `"Test"` or `"Full"`.
    pub scale: String,
    /// Core count of the main runs.
    pub cores: usize,
    /// Compiler generation label.
    pub compiler: String,
    /// Parallel-loop coverage achieved by the compiler.
    pub coverage: f64,
    /// Number of parallelized loops.
    pub plans: usize,
    /// Main machine runs, in spec order.
    pub runs: Vec<RunRow>,
    /// HELIX-RC runs at the spec's `sweep_cores`.
    pub sweep: Vec<RunRow>,
    /// Per-nest breakdown (multi-nest scenarios only).
    pub nests: Vec<NestRow>,
}

impl ScenarioReport {
    /// Everything deterministic about the report — cycles, digests,
    /// instruction counts — with wall-clock noise excluded. Two runs of
    /// the same spec at the same scale must produce identical
    /// fingerprints.
    pub fn fingerprint(&self) -> String {
        let mut s = format!(
            "{}/{}/{}/{}/{:.6}/{}",
            self.scenario, self.scale, self.cores, self.compiler, self.coverage, self.plans
        );
        for row in self.runs.iter().chain(&self.sweep) {
            let _ = write!(
                s,
                ";{}:{}:{}:{:#x}",
                row.config, row.cycles, row.dyn_insts, row.mem_digest
            );
        }
        for nest in &self.nests {
            let _ = write!(
                s,
                ";nest/{}:{}:{}",
                nest.name, nest.seq_cycles, nest.helix_cycles
            );
        }
        s
    }

    /// Render as a JSON document.
    pub fn to_json(&self) -> String {
        use crate::report::json_escape as esc;
        fn rows(out: &mut String, name: &str, rows: &[RunRow]) {
            out.push_str(&format!("  \"{name}\": [\n"));
            for (i, r) in rows.iter().enumerate() {
                let speedup = r
                    .speedup_vs_sequential
                    .map(|s| format!(", \"speedup_vs_sequential\": {s:.3}"))
                    .unwrap_or_default();
                let attribution = r
                    .attribution
                    .as_ref()
                    .map(|buckets| {
                        let body = buckets
                            .iter()
                            .map(|(label, cycles)| format!("\"{}\": {cycles}", esc(label)))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(", \"attribution\": {{{body}}}")
                    })
                    .unwrap_or_default();
                out.push_str(&format!(
                    "    {{\"config\": \"{}\", \"cycles\": {}, \"dyn_insts\": {}, \
                     \"mem_digest\": {}, \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0}{}{}}}",
                    esc(&r.config),
                    r.cycles,
                    r.dyn_insts,
                    r.mem_digest,
                    r.wall_secs,
                    r.cycles_per_sec(),
                    speedup,
                    attribution
                ));
                out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
            }
            out.push_str("  ]");
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"harness\": \"helix\",");
        let _ = writeln!(
            out,
            "  \"schema_version\": {},",
            crate::report::SCHEMA_VERSION
        );
        let _ = writeln!(out, "  \"name\": \"{}\",", esc(&self.scenario));
        let _ = writeln!(out, "  \"kind\": \"{}\",", self.kind);
        let _ = writeln!(out, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(out, "  \"compiler\": \"{}\",", self.compiler);
        let _ = writeln!(out, "  \"coverage\": {:.4},", self.coverage);
        let _ = writeln!(out, "  \"plans\": {},", self.plans);
        rows(&mut out, "runs", &self.runs);
        if !self.sweep.is_empty() {
            out.push_str(",\n");
            rows(&mut out, "sweep", &self.sweep);
        }
        if !self.nests.is_empty() {
            out.push_str(",\n  \"nests\": [\n");
            for (i, nest) in self.nests.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"weight\": {:.4}, \"glue_weight\": {:.4}, \
                     \"coverage\": {:.4}, \"plans\": {}, \"seq_cycles\": {}, \
                     \"helix_cycles\": {}, \"speedup\": {:.3}}}",
                    esc(&nest.name),
                    nest.weight,
                    nest.glue_weight,
                    nest.coverage,
                    nest.plans,
                    nest.seq_cycles,
                    nest.helix_cycles,
                    nest.speedup
                ));
                out.push_str(if i + 1 < self.nests.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ]");
        }
        out.push('\n');
        out.push_str("}\n");
        out
    }
}

fn hcc_config(gen: CompilerGen, cores: u32) -> HccConfig {
    match gen {
        CompilerGen::V1 => HccConfig::v1(cores),
        CompilerGen::V2 => HccConfig::v2(cores),
        CompilerGen::V3 => HccConfig::v3(cores),
    }
}

fn compiler_label(gen: CompilerGen) -> &'static str {
    match gen {
        CompilerGen::V1 => "HCCv1",
        CompilerGen::V2 => "HCCv2",
        CompilerGen::V3 => "HCCv3",
    }
}

fn machine_label(m: MachineKind, cores: usize) -> String {
    match m {
        MachineKind::Sequential => format!("sequential-{cores}"),
        MachineKind::Conventional => format!("conventional-{cores}"),
        MachineKind::HelixRc => format!("helix-rc-{cores}"),
    }
}

/// The per-stall-cause breakdown attached to rows under
/// `--attribution`: total cycles per bucket across all cores, in
/// [`Bucket::ALL`] order.
fn bucket_totals(report: &RunReport) -> Vec<(String, u64)> {
    Bucket::ALL
        .iter()
        .map(|&b| (b.label().to_string(), report.attribution.total(b)))
        .collect()
}

fn timed_run(
    program: &helix_ir::Program,
    compiled: &CompiledProgram,
    machine: MachineKind,
    cores: usize,
    fuel: u64,
    what: &str,
) -> Result<(RunReport, f64), ExpError> {
    let t0 = Instant::now();
    let report = match machine {
        MachineKind::Sequential => {
            simulate_sequential(program, &MachineConfig::conventional(cores), fuel)?
        }
        MachineKind::Conventional => {
            let rep = simulate(compiled, &MachineConfig::conventional(cores), fuel)?;
            check(&rep, what)?;
            rep
        }
        MachineKind::HelixRc => {
            let rep = simulate(compiled, &MachineConfig::helix_rc(cores), fuel)?;
            check(&rep, what)?;
            rep
        }
    };
    Ok((report, t0.elapsed().as_secs_f64()))
}

/// Run one scenario end-to-end: generate the program, compile it with
/// the spec's compiler generation, simulate every requested machine
/// (plus the optional core-count sweep), and collect a report.
pub fn run_scenario(
    spec: &ScenarioSpec,
    scale: Scale,
    overrides: RunOverrides,
) -> Result<ScenarioReport, ExpError> {
    let program = generate(spec, scale)?;
    let cores = overrides.cores.unwrap_or(spec.run.cores as usize);
    let fuel = overrides.fuel.unwrap_or(spec.run.fuel);
    let compiled = compile(&program, &hcc_config(spec.run.compiler, cores as u32))?;

    let mut runs = Vec::new();
    let mut seq_cycles: Option<u64> = None;
    // Sequential baselines are memoized per core count: the sweep below
    // re-baselines only when the machine description actually differs.
    let mut seq_by_cores: std::collections::BTreeMap<usize, u64> =
        std::collections::BTreeMap::new();
    for &machine in &spec.run.machines {
        let label = machine_label(machine, cores);
        let (report, wall_secs) = timed_run(&program, &compiled, machine, cores, fuel, &label)?;
        if machine == MachineKind::Sequential {
            seq_cycles = Some(report.cycles);
            seq_by_cores.insert(cores, report.cycles);
        }
        runs.push(RunRow {
            config: label,
            cycles: report.cycles,
            dyn_insts: report.dyn_insts,
            mem_digest: report.mem_digest,
            wall_secs,
            speedup_vs_sequential: None,
            attribution: overrides.attribution.then(|| bucket_totals(&report)),
        });
    }
    // Speedups are filled in after the loop so they do not depend on
    // where "sequential" appears in the spec's machine list.
    if let Some(seq) = seq_cycles {
        for row in &mut runs {
            row.speedup_vs_sequential = Some(seq as f64 / row.cycles.max(1) as f64);
        }
    }

    let mut sweep = Vec::new();
    for &sweep_cores in &spec.run.sweep_cores {
        let sweep_cores = sweep_cores as usize;
        let compiled = compile(&program, &hcc_config(spec.run.compiler, sweep_cores as u32))?;
        let seq_cycles = match seq_by_cores.get(&sweep_cores) {
            Some(&cycles) => cycles,
            None => {
                let (seq, _) = timed_run(
                    &program,
                    &compiled,
                    MachineKind::Sequential,
                    sweep_cores,
                    fuel,
                    "sweep baseline",
                )?;
                seq_by_cores.insert(sweep_cores, seq.cycles);
                seq.cycles
            }
        };
        let label = machine_label(MachineKind::HelixRc, sweep_cores);
        let (report, wall_secs) = timed_run(
            &program,
            &compiled,
            MachineKind::HelixRc,
            sweep_cores,
            fuel,
            &label,
        )?;
        sweep.push(RunRow {
            config: label,
            cycles: report.cycles,
            dyn_insts: report.dyn_insts,
            mem_digest: report.mem_digest,
            wall_secs,
            speedup_vs_sequential: Some(seq_cycles as f64 / report.cycles.max(1) as f64),
            attribution: overrides.attribution.then(|| bucket_totals(&report)),
        });
    }

    let nests = nest_rows(spec, scale, cores, fuel, seq_cycles, spec.run.compiler)?;

    Ok(ScenarioReport {
        scenario: spec.name.clone(),
        kind: spec.kind.render().into(),
        scale: format!("{scale:?}"),
        cores,
        compiler: compiler_label(spec.run.compiler).into(),
        coverage: compiled.stats.coverage,
        plans: compiled.plans.len(),
        runs,
        sweep,
        nests,
    })
}

/// Per-nest breakdown of a multi-nest scenario (see [`NestRow`] for the
/// measurement semantics).
///
/// `whole_seq_cycles` is the composed program's sequential cycle count
/// when the main runs already measured it; otherwise one extra
/// sequential simulation provides the weight denominator. The composed
/// program *is* the last prefix program, so in-context differencing
/// needs `nests - 1` extra prefix simulations plus one per non-empty
/// glue stretch. `compiler` selects the generation the isolated nests
/// are compiled with — callers must pass whatever generation their
/// headline numbers use, or the per-nest coverage/speedup columns
/// would silently mix compilers.
pub(crate) fn nest_rows(
    spec: &ScenarioSpec,
    scale: Scale,
    cores: usize,
    fuel: u64,
    whole_seq_cycles: Option<u64>,
    compiler: CompilerGen,
) -> Result<Vec<NestRow>, ExpError> {
    if spec.nests.is_empty() {
        return Ok(Vec::new());
    }
    let seq_machine = MachineConfig::conventional(cores);
    let seq_cycles_of = |program: &helix_ir::Program| -> Result<u64, ExpError> {
        Ok(simulate_sequential(program, &seq_machine, fuel)?.cycles)
    };
    let whole_seq = match whole_seq_cycles {
        Some(cycles) => cycles,
        None => seq_cycles_of(&generate(spec, scale)?)?,
    };

    let last = spec.nests.len() - 1;
    let n = scale.n(spec.base_n);
    let mut rows = Vec::new();
    // Cycle count of the prefix ending before nest `ix`'s glue.
    let mut prev_cut = 0u64;
    for (ix, nest) in spec.nests.iter().enumerate() {
        // In-context costs by prefix differencing.
        let after_glue = if nest.glue.eval(n) > 0 || nest.import.is_some() {
            seq_cycles_of(&generate_prefix(spec, scale, ix, true)?)?
        } else {
            prev_cut
        };
        let after_nest = if ix == last {
            whole_seq
        } else {
            seq_cycles_of(&generate_prefix(spec, scale, ix + 1, false)?)?
        };
        let frac = |cycles: u64| cycles as f64 / whole_seq.max(1) as f64;

        // Isolated-nest parallelization measurement.
        let program = generate_nest(spec, scale, ix)?;
        let seq = simulate_sequential(&program, &seq_machine, fuel)?;
        let compiled = compile(&program, &hcc_config(compiler, cores as u32))?;
        let what = format!("{}::{}", spec.name, nest.name);
        let helix = simulate(&compiled, &MachineConfig::helix_rc(cores), fuel)?;
        check(&helix, &what)?;

        rows.push(NestRow {
            name: nest.name.clone(),
            weight: frac(after_nest.saturating_sub(after_glue)),
            glue_weight: frac(after_glue.saturating_sub(prev_cut)),
            coverage: compiled.stats.coverage,
            plans: compiled.plans.len(),
            seq_cycles: seq.cycles,
            helix_cycles: helix.cycles,
            speedup: seq.cycles as f64 / helix.cycles.max(1) as f64,
        });
        prev_cut = after_nest;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_workloads::builtin_spec;

    #[test]
    fn runs_a_spec_end_to_end() {
        let mut spec = builtin_spec("175.vpr").unwrap();
        spec.run.cores = 8;
        let report = run_scenario(&spec, Scale::Test, RunOverrides::default()).unwrap();
        assert_eq!(report.scenario, "175.vpr");
        assert_eq!(report.runs.len(), 3);
        assert!(report.coverage > 0.5, "coverage {}", report.coverage);
        assert!(report.plans >= 1);
        let helix = report
            .runs
            .iter()
            .find(|r| r.config == "helix-rc-8")
            .unwrap();
        assert!(
            helix.speedup_vs_sequential.unwrap() > 1.0,
            "HELIX-RC must speed up: {helix:?}"
        );
        let json = report.to_json();
        assert!(json.contains("\"config\": \"helix-rc-8\""));
        assert!(json.contains("\"cycles_per_sec\""));
    }

    #[test]
    fn overrides_change_cores() {
        let spec = builtin_spec("900.chase").unwrap();
        let report = run_scenario(
            &spec,
            Scale::Test,
            RunOverrides {
                cores: Some(4),
                fuel: None,
                ..RunOverrides::default()
            },
        )
        .unwrap();
        assert_eq!(report.cores, 4);
        assert!(report.runs.iter().all(|r| r.config.ends_with("-4")));
    }

    #[test]
    fn reports_are_deterministic_modulo_wall_clock() {
        let spec = builtin_spec("910.bursty").unwrap();
        let a = run_scenario(&spec, Scale::Test, RunOverrides::default()).unwrap();
        let b = run_scenario(&spec, Scale::Test, RunOverrides::default()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn sweep_rows_are_emitted() {
        let mut spec = builtin_spec("920.blend").unwrap();
        spec.run.cores = 4;
        spec.run.sweep_cores = vec![2, 8];
        let report = run_scenario(&spec, Scale::Test, RunOverrides::default()).unwrap();
        assert_eq!(report.sweep.len(), 2);
        assert_eq!(report.sweep[0].config, "helix-rc-2");
        assert!(report.to_json().contains("\"sweep\""));
    }
}
